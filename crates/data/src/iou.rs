//! Intersection-over-Union (Jaccard index) of hyper-rectangles (Eq. 10 of the paper).
//!
//! The IoU between a mined region and a ground-truth region is the accuracy metric of the
//! paper's synthetic-data experiments (Figures 3 and 4).

use crate::region::Region;

/// Volume of the intersection of two regions (0 when disjoint or of mismatched dimension).
pub fn intersection_volume(a: &Region, b: &Region) -> f64 {
    match a.intersection(b) {
        Some(i) => i.volume(),
        None => 0.0,
    }
}

/// Volume of the union of two regions by inclusion–exclusion.
pub fn union_volume(a: &Region, b: &Region) -> f64 {
    a.volume() + b.volume() - intersection_volume(a, b)
}

/// Intersection over Union of two hyper-rectangles: `|A ∩ B| / |A ∪ B| ∈ [0, 1]`.
///
/// Returns 0 for regions of mismatched dimensionality.
pub fn iou(a: &Region, b: &Region) -> f64 {
    if a.dimensions() != b.dimensions() {
        return 0.0;
    }
    let inter = intersection_volume(a, b);
    if inter <= 0.0 {
        return 0.0;
    }
    let union = a.volume() + b.volume() - inter;
    if union <= 0.0 {
        0.0
    } else {
        (inter / union).clamp(0.0, 1.0)
    }
}

/// IoU of each candidate against its best-matching ground-truth region, averaged over the
/// ground-truth regions (the evaluation protocol behind Fig. 3: "for k = 3 the IoU is obtained
/// by averaging IoUs for the 3 GT regions").
///
/// For every ground-truth region the best IoU attained by any candidate is taken; the result
/// is the mean of those per-GT bests. Returns 0 when either set is empty.
pub fn average_best_iou(candidates: &[Region], ground_truth: &[Region]) -> f64 {
    if candidates.is_empty() || ground_truth.is_empty() {
        return 0.0;
    }
    let total: f64 = ground_truth
        .iter()
        .map(|gt| {
            candidates
                .iter()
                .map(|c| iou(c, gt))
                .fold(0.0_f64, f64::max)
        })
        .sum();
    total / ground_truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(center: &[f64], half: &[f64]) -> Region {
        Region::new(center.to_vec(), half.to_vec()).unwrap()
    }

    #[test]
    fn identical_regions_have_iou_one() {
        let r = region(&[0.5, 0.5], &[0.2, 0.3]);
        assert!((iou(&r, &r) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_regions_have_iou_zero() {
        let a = region(&[0.2], &[0.1]);
        let b = region(&[0.8], &[0.1]);
        assert_eq!(iou(&a, &b), 0.0);
    }

    #[test]
    fn half_overlap_in_one_dimension() {
        // [0,1] vs [0.5,1.5]: intersection 0.5, union 1.5 -> IoU = 1/3.
        let a = region(&[0.5], &[0.5]);
        let b = region(&[1.0], &[0.5]);
        assert!((iou(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn nested_regions() {
        let outer = region(&[0.5, 0.5], &[0.5, 0.5]);
        let inner = region(&[0.5, 0.5], &[0.25, 0.25]);
        // inner volume 0.25, outer volume 1.0 -> IoU = 0.25.
        assert!((iou(&outer, &inner) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn iou_is_symmetric() {
        let a = region(&[0.4, 0.4], &[0.2, 0.3]);
        let b = region(&[0.5, 0.6], &[0.3, 0.1]);
        assert!((iou(&a, &b) - iou(&b, &a)).abs() < 1e-15);
    }

    #[test]
    fn mismatched_dimensions_give_zero() {
        let a = region(&[0.5], &[0.5]);
        let b = region(&[0.5, 0.5], &[0.5, 0.5]);
        assert_eq!(iou(&a, &b), 0.0);
    }

    #[test]
    fn union_and_intersection_volumes() {
        let a = region(&[0.5], &[0.5]);
        let b = region(&[1.0], &[0.5]);
        assert!((intersection_volume(&a, &b) - 0.5).abs() < 1e-12);
        assert!((union_volume(&a, &b) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn average_best_iou_matches_each_gt_to_best_candidate() {
        let gt1 = region(&[0.2, 0.2], &[0.1, 0.1]);
        let gt2 = region(&[0.8, 0.8], &[0.1, 0.1]);
        let candidates = vec![gt1.clone(), region(&[0.79, 0.8], &[0.1, 0.1])];
        let score = average_best_iou(&candidates, &[gt1, gt2]);
        assert!(score > 0.8, "score {score}");
    }

    #[test]
    fn average_best_iou_empty_inputs() {
        let r = region(&[0.5], &[0.1]);
        assert_eq!(average_best_iou(&[], std::slice::from_ref(&r)), 0.0);
        assert_eq!(average_best_iou(&[r], &[]), 0.0);
    }
}
