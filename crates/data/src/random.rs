//! Small random-sampling helpers shared by the generators.
//!
//! The workspace only depends on `rand` (no `rand_distr`), so Gaussian and categorical
//! sampling are implemented here. All helpers take a caller-provided RNG so callers stay in
//! control of seeding and reproducibility.

use rand::Rng;

/// Draws a sample from a standard normal distribution using the Box–Muller transform.
///
/// The second value produced by the transform is intentionally discarded to keep the helper
/// stateless; generators in this crate are not throughput-critical.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard against u1 == 0.0 which would make ln(0) = -inf.
    let u1: f64 = loop {
        let u: f64 = rng.random();
        if u > f64::EPSILON {
            break u;
        }
    };
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draws a sample from a normal distribution with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// Draws a normal sample truncated (by rejection) to `[lo, hi]`.
///
/// Falls back to clamping after 64 rejections so that pathological parameters cannot loop
/// forever.
pub fn truncated_normal<R: Rng + ?Sized>(
    rng: &mut R,
    mean: f64,
    std_dev: f64,
    lo: f64,
    hi: f64,
) -> f64 {
    debug_assert!(lo <= hi, "truncation interval must be ordered");
    for _ in 0..64 {
        let x = normal(rng, mean, std_dev);
        if x >= lo && x <= hi {
            return x;
        }
    }
    normal(rng, mean, std_dev).clamp(lo, hi)
}

/// Samples an index according to the (non-negative, not necessarily normalized) weights.
///
/// Returns `None` when the weights are empty or sum to zero.
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> Option<usize> {
    let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
    if weights.is_empty() || total <= 0.0 {
        return None;
    }
    let mut target = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if !(w.is_finite() && w > 0.0) {
            continue;
        }
        if target < w {
            return Some(i);
        }
        target -= w;
    }
    // Floating point round-off can leave a tiny positive remainder; return the last positive
    // weight in that case.
    weights.iter().rposition(|w| w.is_finite() && *w > 0.0)
}

/// Fisher–Yates shuffle of indices `0..n`, returned as a vector.
pub fn shuffled_indices<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_has_roughly_zero_mean_unit_variance() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.1, "variance {var} too far from 1");
    }

    #[test]
    fn normal_respects_mean_and_std() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 3.0, 0.5)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05);
    }

    #[test]
    fn truncated_normal_stays_in_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..2_000 {
            let x = truncated_normal(&mut rng, 0.5, 2.0, 0.0, 1.0);
            assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let weights = [0.0, 10.0, 0.0, 1.0];
        let mut counts = [0usize; 4];
        for _ in 0..10_000 {
            counts[weighted_index(&mut rng, &weights).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        assert_eq!(counts[2], 0);
        assert!(counts[1] > 8 * counts[3]);
    }

    #[test]
    fn weighted_index_handles_degenerate_inputs() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(weighted_index(&mut rng, &[]), None);
        assert_eq!(weighted_index(&mut rng, &[0.0, 0.0]), None);
        assert_eq!(weighted_index(&mut rng, &[f64::NAN, 2.0]), Some(1));
    }

    #[test]
    fn shuffled_indices_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut idx = shuffled_indices(&mut rng, 100);
        idx.sort_unstable();
        assert_eq!(idx, (0..100).collect::<Vec<_>>());
    }
}
