//! Simulator standing in for the Chicago Crimes dataset (Section V-C, Fig. 5).
//!
//! The paper's qualitative experiment plots crime-incident density over normalized X–Y spatial
//! coordinates and asks SuRF for regions whose density exceeds the third quartile of a random
//! region sample. The public dataset is not redistributable here, so this module generates a
//! spatial point process with the same structure: a uniform background of incidents plus a
//! number of Gaussian *hot-spots* of much higher intensity (city centres, nightlife districts,
//! ...). The density statistic over such data exhibits exactly the multi-modal structure the
//! experiment needs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::random::{truncated_normal, weighted_index};
use crate::region::Region;
use crate::schema::Schema;
use crate::statistic::Statistic;

/// Specification of the synthetic crime-incident generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrimesSpec {
    /// Number of recorded incidents.
    pub incidents: usize,
    /// Number of Gaussian hot-spots.
    pub hotspots: usize,
    /// Fraction of incidents drawn from the uniform background (the rest belong to hot-spots).
    pub background_fraction: f64,
    /// Standard deviation of each hot-spot.
    pub hotspot_std: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CrimesSpec {
    fn default() -> Self {
        Self {
            incidents: 50_000,
            hotspots: 4,
            background_fraction: 0.35,
            hotspot_std: 0.05,
            seed: 2020,
        }
    }
}

impl CrimesSpec {
    /// Spec with an explicit number of incidents.
    pub fn with_incidents(mut self, incidents: usize) -> Self {
        self.incidents = incidents;
        self
    }

    /// Spec with an explicit number of hot-spots.
    pub fn with_hotspots(mut self, hotspots: usize) -> Self {
        self.hotspots = hotspots;
        self
    }

    /// Spec with an explicit seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The generated crime-incident dataset together with its hot-spot ground truth.
#[derive(Debug, Clone)]
pub struct CrimesDataset {
    /// 2-D incident locations (columns `x`, `y` in `[0, 1]`).
    pub dataset: Dataset,
    /// Centres of the planted hot-spots.
    pub hotspot_centers: Vec<Vec<f64>>,
    /// Hot-spot neighbourhoods expressed as regions (±2σ around each centre), usable as
    /// approximate ground truth in tests.
    pub hotspot_regions: Vec<Region>,
    /// The spec the dataset was generated from.
    pub spec: CrimesSpec,
}

impl CrimesDataset {
    /// Generates the dataset.
    pub fn generate(spec: &CrimesSpec) -> Self {
        assert!(spec.incidents >= 100, "at least 100 incidents");
        assert!(spec.hotspots >= 1, "at least one hot-spot");
        assert!(
            (0.0..1.0).contains(&spec.background_fraction),
            "background fraction must be in [0, 1)"
        );

        let mut rng = StdRng::seed_from_u64(spec.seed);
        // Hot-spot centres stay away from the border so their mass remains inside the city.
        let centers: Vec<Vec<f64>> = (0..spec.hotspots)
            .map(|_| vec![rng.random_range(0.15..0.85), rng.random_range(0.15..0.85)])
            .collect();
        // Hot-spot intensities differ so the density landscape is multi-modal with peaks of
        // different heights, like a real city.
        let intensities: Vec<f64> = (0..spec.hotspots)
            .map(|_| rng.random_range(0.5..1.5))
            .collect();

        let mut xs = Vec::with_capacity(spec.incidents);
        let mut ys = Vec::with_capacity(spec.incidents);
        for _ in 0..spec.incidents {
            if rng.random::<f64>() < spec.background_fraction {
                xs.push(rng.random::<f64>());
                ys.push(rng.random::<f64>());
            } else {
                let h = weighted_index(&mut rng, &intensities).expect("non-empty intensities");
                xs.push(truncated_normal(
                    &mut rng,
                    centers[h][0],
                    spec.hotspot_std,
                    0.0,
                    1.0,
                ));
                ys.push(truncated_normal(
                    &mut rng,
                    centers[h][1],
                    spec.hotspot_std,
                    0.0,
                    1.0,
                ));
            }
        }

        let dataset = Dataset::from_columns(vec![xs, ys])
            .expect("two equal-length columns")
            .with_schema(Schema::named(vec!["x_coordinate", "y_coordinate"]))
            .expect("schema dimensionality matches");
        let hotspot_regions = centers
            .iter()
            .map(|c| {
                Region::new(c.clone(), vec![2.0 * spec.hotspot_std; 2])
                    .expect("positive half lengths")
            })
            .collect();
        CrimesDataset {
            dataset,
            hotspot_centers: centers,
            hotspot_regions,
            spec: spec.clone(),
        }
    }

    /// The statistic used by the paper's Crimes experiment: incident count (density).
    pub fn statistic(&self) -> Statistic {
        Statistic::Count
    }

    /// Empirical third quartile of the statistic over `samples` random regions of the given
    /// half side length — the paper sets `y_R = Q3` of a random set of regions.
    pub fn third_quartile_threshold(&self, samples: usize, half_length: f64, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut values: Vec<f64> = (0..samples.max(4))
            .map(|_| {
                let center = vec![
                    rng.random_range(half_length..(1.0 - half_length)),
                    rng.random_range(half_length..(1.0 - half_length)),
                ];
                let region = Region::new(center, vec![half_length; 2]).expect("valid region");
                self.dataset.count_in(&region).unwrap_or(0) as f64
            })
            .collect();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let idx = ((values.len() as f64) * 0.75).floor() as usize;
        values[idx.min(values.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_number_of_incidents_in_unit_square() {
        let crimes = CrimesDataset::generate(&CrimesSpec::default().with_incidents(5_000));
        assert_eq!(crimes.dataset.len(), 5_000);
        assert_eq!(crimes.dataset.dimensions(), 2);
        let domain = crimes.dataset.domain().unwrap();
        assert!(Region::unit_cube(2).contains_region(&domain));
    }

    #[test]
    fn hotspots_are_denser_than_background() {
        let crimes =
            CrimesDataset::generate(&CrimesSpec::default().with_incidents(20_000).with_seed(7));
        let hotspot = &crimes.hotspot_regions[0];
        let hotspot_count = crimes.dataset.count_in(hotspot).unwrap();
        // A same-sized box in the corner far away from any hot-spot centre.
        let corner = Region::new(vec![0.03, 0.03], vec![2.0 * crimes.spec.hotspot_std; 2]).unwrap();
        let corner_count = crimes.dataset.count_in(&corner).unwrap();
        assert!(
            hotspot_count > 5 * corner_count.max(1),
            "hotspot {hotspot_count} vs corner {corner_count}"
        );
    }

    #[test]
    fn third_quartile_threshold_orders_random_regions() {
        let crimes =
            CrimesDataset::generate(&CrimesSpec::default().with_incidents(8_000).with_seed(3));
        let q3 = crimes.third_quartile_threshold(200, 0.05, 9);
        assert!(q3 > 0.0);
        // Q3 must be below the densest hot-spot count for the mining task to be feasible.
        let best = crimes
            .hotspot_regions
            .iter()
            .map(|r| crimes.dataset.count_in(r).unwrap())
            .max()
            .unwrap();
        assert!((best as f64) > q3);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let spec = CrimesSpec::default().with_incidents(1_000).with_seed(5);
        let a = CrimesDataset::generate(&spec);
        let b = CrimesDataset::generate(&spec);
        assert_eq!(a.dataset, b.dataset);
        assert_eq!(a.hotspot_centers, b.hotspot_centers);
    }

    #[test]
    fn schema_names_spatial_columns() {
        let crimes = CrimesDataset::generate(&CrimesSpec::default().with_incidents(500));
        assert_eq!(
            crimes.dataset.schema().dimension_name(0).unwrap(),
            "x_coordinate"
        );
        assert_eq!(crimes.statistic(), Statistic::Count);
    }
}
