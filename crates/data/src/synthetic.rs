//! Synthetic ground-truth datasets (Section V-A of the paper, Fig. 2).
//!
//! Each dataset lives on the unit hyper-cube `[0, 1]^d` and embeds `k` ground-truth (GT)
//! hyper-rectangles that are either
//!
//! * **density** GT regions — purposely denser in points than the background, evaluated with
//!   the [`Statistic::Count`] statistic (the paper uses `y_R = 1000`), or
//! * **aggregate** GT regions — regions whose points carry a higher *measure* value, evaluated
//!   with [`Statistic::Average(Target::Measure)`] (the paper uses `y_R = 2`).
//!
//! The paper's evaluation sweeps `d ∈ {1..5}`, `k ∈ {1, 3}` and dataset sizes of
//! 7,500–12,500 points; [`SyntheticSpec::paper_suite`] reproduces that grid of 20 datasets.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::random::normal;
use crate::region::Region;
use crate::statistic::{Statistic, Target};

/// Which kind of ground-truth structure is embedded in the synthetic data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StatisticKind {
    /// GT regions are denser than the background; statistic of interest is the point count.
    Density,
    /// GT regions carry a higher mean measure value; statistic is the average measure.
    Aggregate,
}

/// Specification of a synthetic ground-truth dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticSpec {
    /// Data dimensionality `d` (the region solution space has `2d` dimensions).
    pub dimensions: usize,
    /// Number of ground-truth regions `k`.
    pub regions: usize,
    /// Density or aggregate ground truth.
    pub kind: StatisticKind,
    /// Total number of data vectors `N`.
    pub points: usize,
    /// Half side length of each GT hyper-rectangle, per dimension.
    pub gt_half_length: f64,
    /// Number of points planted inside each density GT region.
    pub points_per_region: usize,
    /// Mean of the measure values inside aggregate GT regions (background mean is 0).
    pub aggregate_high_mean: f64,
    /// Standard deviation of measure values.
    pub aggregate_std: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SyntheticSpec {
    /// Spec for a density dataset with `d` dimensions and `k` GT regions, using the paper's
    /// defaults (≈10,000 points, ≈1,200 points per GT region so `y_R = 1000` is satisfiable).
    pub fn density(dimensions: usize, regions: usize) -> Self {
        Self {
            dimensions,
            regions,
            kind: StatisticKind::Density,
            points: 10_000,
            gt_half_length: 0.12,
            points_per_region: 1_200,
            aggregate_high_mean: 3.0,
            aggregate_std: 0.8,
            seed: 1,
        }
    }

    /// Spec for an aggregate dataset with `d` dimensions and `k` GT regions (background measure
    /// mean 0, GT measure mean 3, so `y_R = 2` separates them).
    pub fn aggregate(dimensions: usize, regions: usize) -> Self {
        Self {
            kind: StatisticKind::Aggregate,
            ..Self::density(dimensions, regions)
        }
    }

    /// Overrides the total number of points.
    pub fn with_points(mut self, points: usize) -> Self {
        self.points = points;
        self
    }

    /// Overrides the number of points planted in each density GT region.
    pub fn with_points_per_region(mut self, points: usize) -> Self {
        self.points_per_region = points;
        self
    }

    /// Overrides the GT half side length.
    pub fn with_gt_half_length(mut self, half_length: f64) -> Self {
        self.gt_half_length = half_length;
        self
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The statistic of interest for this dataset kind.
    pub fn statistic(&self) -> Statistic {
        match self.kind {
            StatisticKind::Density => Statistic::Count,
            StatisticKind::Aggregate => Statistic::Average(Target::Measure),
        }
    }

    /// The threshold `y_R` the paper uses for this dataset kind (1000 for density, 2 for
    /// aggregate).
    pub fn paper_threshold(&self) -> f64 {
        match self.kind {
            StatisticKind::Density => 1000.0,
            StatisticKind::Aggregate => 2.0,
        }
    }

    /// The 20 synthetic datasets of the paper's evaluation: `d ∈ 1..=5`, `k ∈ {1, 3}`,
    /// kind ∈ {density, aggregate}. Dataset sizes vary in 7,500–12,500 as in the paper.
    pub fn paper_suite(base_seed: u64) -> Vec<SyntheticSpec> {
        let mut specs = Vec::with_capacity(20);
        let mut seed = base_seed;
        for &kind in &[StatisticKind::Density, StatisticKind::Aggregate] {
            for &k in &[1usize, 3] {
                for d in 1..=5usize {
                    seed += 1;
                    let points = 7_500 + ((seed as usize * 997) % 5_001);
                    let mut spec = match kind {
                        StatisticKind::Density => SyntheticSpec::density(d, k),
                        StatisticKind::Aggregate => SyntheticSpec::aggregate(d, k),
                    };
                    spec.points = points;
                    spec.seed = seed;
                    specs.push(spec);
                }
            }
        }
        specs
    }
}

/// A generated synthetic dataset together with its ground truth.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// The generated data.
    pub dataset: Dataset,
    /// The planted ground-truth regions.
    pub ground_truth: Vec<Region>,
    /// The statistic of interest for this dataset.
    pub statistic: Statistic,
    /// The threshold `y_R` used by the paper for this dataset kind.
    pub threshold: f64,
    /// The spec the dataset was generated from.
    pub spec: SyntheticSpec,
}

impl SyntheticDataset {
    /// Generates a dataset according to the spec. Panics only on programmer error (zero
    /// dimensions or zero points), which is validated with `assert!`.
    pub fn generate(spec: &SyntheticSpec) -> Self {
        assert!(spec.dimensions >= 1, "dimensions must be >= 1");
        assert!(spec.regions >= 1, "at least one ground-truth region");
        assert!(spec.points >= 100, "at least 100 points");
        assert!(
            spec.gt_half_length > 0.0 && spec.gt_half_length < 0.5,
            "gt_half_length must be in (0, 0.5)"
        );

        let mut rng = StdRng::seed_from_u64(spec.seed);
        let ground_truth = place_ground_truth(&mut rng, spec);

        match spec.kind {
            StatisticKind::Density => Self::generate_density(spec, &ground_truth, &mut rng),
            StatisticKind::Aggregate => Self::generate_aggregate(spec, &ground_truth, &mut rng),
        }
    }

    fn generate_density(
        spec: &SyntheticSpec,
        ground_truth: &[Region],
        rng: &mut StdRng,
    ) -> SyntheticDataset {
        let planted = spec.points_per_region * spec.regions;
        let background = spec.points.saturating_sub(planted).max(1);
        let mut columns = vec![Vec::with_capacity(spec.points); spec.dimensions];

        // Background points: uniform over the unit cube.
        for _ in 0..background {
            for (dim, column) in columns.iter_mut().enumerate() {
                let _ = dim;
                column.push(rng.random::<f64>());
            }
        }
        // Planted points: uniform inside each GT hyper-rectangle.
        for gt in ground_truth {
            let lower = gt.lower();
            let upper = gt.upper();
            for _ in 0..spec.points_per_region {
                for (dim, column) in columns.iter_mut().enumerate() {
                    column.push(rng.random_range(lower[dim]..upper[dim]));
                }
            }
        }

        let dataset = Dataset::from_columns(columns).expect("columns are consistent");
        SyntheticDataset {
            dataset,
            ground_truth: ground_truth.to_vec(),
            statistic: spec.statistic(),
            threshold: spec.paper_threshold(),
            spec: spec.clone(),
        }
    }

    fn generate_aggregate(
        spec: &SyntheticSpec,
        ground_truth: &[Region],
        rng: &mut StdRng,
    ) -> SyntheticDataset {
        let mut columns = vec![Vec::with_capacity(spec.points); spec.dimensions];
        let mut measure = Vec::with_capacity(spec.points);
        for _ in 0..spec.points {
            let point: Vec<f64> = (0..spec.dimensions).map(|_| rng.random::<f64>()).collect();
            let inside_gt = ground_truth.iter().any(|gt| gt.contains(&point));
            let mean = if inside_gt {
                spec.aggregate_high_mean
            } else {
                0.0
            };
            measure.push(normal(rng, mean, spec.aggregate_std));
            for (dim, column) in columns.iter_mut().enumerate() {
                column.push(point[dim]);
            }
        }
        let dataset = Dataset::from_columns(columns)
            .expect("columns are consistent")
            .with_measure("value", measure)
            .expect("measure has matching length");
        SyntheticDataset {
            dataset,
            ground_truth: ground_truth.to_vec(),
            statistic: spec.statistic(),
            threshold: spec.paper_threshold(),
            spec: spec.clone(),
        }
    }

    /// Fraction of the unit-cube volume covered by the ground truth (the paper discusses how
    /// this shrinks as `0.3^d` with dimensionality, driving the IoU drop of Fig. 3).
    pub fn ground_truth_coverage(&self) -> f64 {
        self.ground_truth.iter().map(Region::volume).sum()
    }
}

/// Places `k` non-overlapping GT hyper-rectangles inside the unit cube, keeping a margin from
/// the domain boundary so the full rectangle fits.
fn place_ground_truth(rng: &mut StdRng, spec: &SyntheticSpec) -> Vec<Region> {
    let margin = spec.gt_half_length;
    let mut regions: Vec<Region> = Vec::with_capacity(spec.regions);
    let mut attempts = 0usize;
    while regions.len() < spec.regions {
        attempts += 1;
        let center: Vec<f64> = (0..spec.dimensions)
            .map(|_| rng.random_range(margin..(1.0 - margin)))
            .collect();
        let candidate = Region::new(center, vec![spec.gt_half_length; spec.dimensions])
            .expect("valid construction");
        let overlaps = regions.iter().any(|r| r.intersection(&candidate).is_some());
        if !overlaps || attempts > 200 {
            regions.push(candidate);
        }
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_dataset_has_dense_ground_truth() {
        let spec = SyntheticSpec::density(2, 1).with_points(5_000).with_seed(3);
        let synthetic = SyntheticDataset::generate(&spec);
        assert_eq!(synthetic.dataset.len(), 5_000);
        assert_eq!(synthetic.ground_truth.len(), 1);
        let gt = &synthetic.ground_truth[0];
        let inside = synthetic.dataset.count_in(gt).unwrap();
        // All 1,200 planted points plus some background must be inside.
        assert!(inside >= spec.points_per_region, "inside = {inside}");
        // The GT region must clearly exceed the paper threshold while a random far corner does
        // not.
        assert!(inside as f64 > synthetic.threshold);
    }

    #[test]
    fn density_points_stay_in_unit_cube() {
        let spec = SyntheticSpec::density(3, 3).with_points(3_000).with_seed(5);
        let synthetic = SyntheticDataset::generate(&spec);
        let domain = synthetic.dataset.domain().unwrap();
        assert!(Region::unit_cube(3).contains_region(&domain));
    }

    #[test]
    fn aggregate_dataset_separates_means() {
        let spec = SyntheticSpec::aggregate(2, 1)
            .with_points(6_000)
            .with_seed(11);
        let synthetic = SyntheticDataset::generate(&spec);
        let gt = &synthetic.ground_truth[0];
        let stat = synthetic.statistic;
        let inside = stat.evaluate(&synthetic.dataset, gt).unwrap().unwrap();
        assert!(
            inside > synthetic.threshold,
            "GT aggregate {inside} should exceed threshold {}",
            synthetic.threshold
        );
        let overall = stat
            .evaluate(&synthetic.dataset, &Region::unit_cube(2))
            .unwrap()
            .unwrap();
        assert!(overall < synthetic.threshold, "background mean {overall}");
    }

    #[test]
    fn ground_truth_regions_do_not_overlap_for_small_k() {
        let spec = SyntheticSpec::density(2, 3)
            .with_seed(17)
            .with_points(2_000);
        let synthetic = SyntheticDataset::generate(&spec);
        let gts = &synthetic.ground_truth;
        assert_eq!(gts.len(), 3);
        for i in 0..gts.len() {
            for j in (i + 1)..gts.len() {
                assert!(
                    gts[i].intersection(&gts[j]).is_none(),
                    "GT regions {i} and {j} overlap"
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = SyntheticSpec::density(2, 1)
            .with_points(1_000)
            .with_seed(42);
        let a = SyntheticDataset::generate(&spec);
        let b = SyntheticDataset::generate(&spec);
        assert_eq!(a.dataset, b.dataset);
        assert_eq!(a.ground_truth, b.ground_truth);
        let c = SyntheticDataset::generate(&spec.clone().with_seed(43));
        assert_ne!(a.dataset, c.dataset);
    }

    #[test]
    fn paper_suite_has_twenty_datasets() {
        let suite = SyntheticSpec::paper_suite(100);
        assert_eq!(suite.len(), 20);
        assert!(suite
            .iter()
            .all(|s| (7_500..=12_500).contains(&s.points) && (1..=5).contains(&s.dimensions)));
        assert_eq!(
            suite
                .iter()
                .filter(|s| s.kind == StatisticKind::Density)
                .count(),
            10
        );
        assert_eq!(suite.iter().filter(|s| s.regions == 3).count(), 10);
    }

    #[test]
    fn coverage_shrinks_with_dimensionality() {
        let d2 = SyntheticDataset::generate(&SyntheticSpec::density(2, 1).with_points(1_000));
        let d4 = SyntheticDataset::generate(&SyntheticSpec::density(4, 1).with_points(1_000));
        assert!(d4.ground_truth_coverage() < d2.ground_truth_coverage());
    }

    #[test]
    fn statistic_and_threshold_match_kind() {
        let density = SyntheticSpec::density(1, 1);
        assert_eq!(density.statistic(), Statistic::Count);
        assert_eq!(density.paper_threshold(), 1000.0);
        let aggregate = SyntheticSpec::aggregate(1, 1);
        assert_eq!(aggregate.statistic(), Statistic::Average(Target::Measure));
        assert_eq!(aggregate.paper_threshold(), 2.0);
    }
}
