//! The statistics engine: maps a (dataset, region) pair to the scalar statistic `y = f(x, l)`
//! (Definition 2 / Definition 3 of the paper).
//!
//! This module is the expensive "true function" `f` that SuRF's surrogate models replace at
//! mining time. Any statistic — decomposable (COUNT, SUM) or non-decomposable (MEDIAN) — can
//! be expressed; the paper's experiments use the *density* (point count) and *aggregate*
//! (average) statistics plus the class-ratio statistic of the Human-Activity use case.

use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::error::DataError;
use crate::region::Region;

/// Which values a value-aggregating statistic operates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Target {
    /// One of the `d` data dimensions. Per Definition 2, the targeted dimension is *not*
    /// constrained by the region when evaluating the statistic.
    Dimension(usize),
    /// The dataset's measure column (e.g. a crime index), which never bounds regions.
    Measure,
}

/// A statistic of interest `y = f(x, l)` extracted from the data vectors inside a region.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Statistic {
    /// Number of data vectors inside the region (the paper's *density* statistic).
    Count,
    /// Number of data vectors per unit of region volume.
    CountPerVolume,
    /// Average of the target values over the region (the paper's *aggregate* statistic).
    Average(Target),
    /// Sum of the target values over the region.
    Sum(Target),
    /// Minimum of the target values over the region.
    Min(Target),
    /// Maximum of the target values over the region.
    Max(Target),
    /// Population variance of the target values over the region.
    Variance(Target),
    /// Median of the target values over the region (a non-decomposable statistic).
    Median(Target),
    /// Fraction of points inside the region carrying the given class label (the Human-Activity
    /// use case: ratio of `activity = stand`).
    Ratio {
        /// The class label whose frequency is measured.
        label: u32,
    },
}

impl Statistic {
    /// Convenience constructor: average of a data dimension.
    pub fn average_of_dimension(dimension: usize) -> Self {
        Statistic::Average(Target::Dimension(dimension))
    }

    /// Convenience constructor: average of the measure column.
    pub fn average_of_measure() -> Self {
        Statistic::Average(Target::Measure)
    }

    /// Whether this statistic needs the dataset's measure column.
    pub fn needs_measure(&self) -> bool {
        matches!(
            self,
            Statistic::Average(Target::Measure)
                | Statistic::Sum(Target::Measure)
                | Statistic::Min(Target::Measure)
                | Statistic::Max(Target::Measure)
                | Statistic::Variance(Target::Measure)
                | Statistic::Median(Target::Measure)
        )
    }

    /// Whether this statistic needs the dataset's label column.
    pub fn needs_labels(&self) -> bool {
        matches!(self, Statistic::Ratio { .. })
    }

    /// Value reported for an empty region. `Some` for statistics with a natural neutral value
    /// (counts and ratios), `None` for undefined aggregates.
    pub fn empty_value(&self) -> Option<f64> {
        match self {
            Statistic::Count | Statistic::CountPerVolume | Statistic::Ratio { .. } => Some(0.0),
            _ => None,
        }
    }

    /// Evaluates the statistic over the subset of `dataset` covered by `region`.
    ///
    /// Returns `Ok(None)` when the region contains no points and the statistic is undefined on
    /// empty sets (averages, medians, ...). Count-like statistics return `Ok(Some(0.0))`.
    pub fn evaluate(&self, dataset: &Dataset, region: &Region) -> Result<Option<f64>, DataError> {
        // Region membership: a dimension-targeting statistic leaves its own dimension
        // unconstrained (Definition 2).
        let indices = match self.ignored_dimension() {
            Some(dim) => {
                if dim >= dataset.dimensions() {
                    return Err(DataError::UnknownDimension {
                        dimension: dim,
                        dimensions: dataset.dimensions(),
                    });
                }
                dataset.indices_in_ignoring(region, dim)?
            }
            None => dataset.indices_in(region)?,
        };

        match self {
            Statistic::Count => Ok(Some(indices.len() as f64)),
            Statistic::CountPerVolume => {
                let volume = region.volume();
                if volume <= 0.0 {
                    Ok(Some(0.0))
                } else {
                    Ok(Some(indices.len() as f64 / volume))
                }
            }
            Statistic::Ratio { label } => {
                let labels = dataset.labels().ok_or(DataError::MissingLabels)?;
                if indices.is_empty() {
                    return Ok(Some(0.0));
                }
                let matching = indices.iter().filter(|&&i| labels[i] == *label).count();
                Ok(Some(matching as f64 / indices.len() as f64))
            }
            Statistic::Average(target)
            | Statistic::Sum(target)
            | Statistic::Min(target)
            | Statistic::Max(target)
            | Statistic::Variance(target)
            | Statistic::Median(target) => {
                if indices.is_empty() {
                    return Ok(None);
                }
                let values = self.target_values(dataset, *target, &indices)?;
                Ok(Some(self.aggregate(&values)))
            }
        }
    }

    /// Evaluates the statistic, substituting `default` when the statistic is undefined on the
    /// (empty) region.
    pub fn evaluate_or(
        &self,
        dataset: &Dataset,
        region: &Region,
        default: f64,
    ) -> Result<f64, DataError> {
        Ok(self.evaluate(dataset, region)?.unwrap_or(default))
    }

    fn ignored_dimension(&self) -> Option<usize> {
        match self {
            Statistic::Average(Target::Dimension(d))
            | Statistic::Sum(Target::Dimension(d))
            | Statistic::Min(Target::Dimension(d))
            | Statistic::Max(Target::Dimension(d))
            | Statistic::Variance(Target::Dimension(d))
            | Statistic::Median(Target::Dimension(d)) => Some(*d),
            _ => None,
        }
    }

    fn target_values(
        &self,
        dataset: &Dataset,
        target: Target,
        indices: &[usize],
    ) -> Result<Vec<f64>, DataError> {
        match target {
            Target::Dimension(d) => {
                let column = dataset.column(d)?;
                Ok(indices.iter().map(|&i| column[i]).collect())
            }
            Target::Measure => {
                let measure = dataset.measure().ok_or(DataError::MissingLabels)?;
                Ok(indices.iter().map(|&i| measure[i]).collect())
            }
        }
    }

    fn aggregate(&self, values: &[f64]) -> f64 {
        debug_assert!(!values.is_empty());
        match self {
            Statistic::Average(_) => values.iter().sum::<f64>() / values.len() as f64,
            Statistic::Sum(_) => values.iter().sum(),
            Statistic::Min(_) => values.iter().copied().fold(f64::INFINITY, f64::min),
            Statistic::Max(_) => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            Statistic::Variance(_) => {
                let mean = values.iter().sum::<f64>() / values.len() as f64;
                values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64
            }
            Statistic::Median(_) => {
                let mut sorted = values.to_vec();
                sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                let mid = sorted.len() / 2;
                if sorted.len() % 2 == 1 {
                    sorted[mid]
                } else {
                    0.5 * (sorted[mid - 1] + sorted[mid])
                }
            }
            // Count-like statistics never reach aggregate().
            _ => unreachable!("aggregate called on a count-like statistic"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Dataset {
        // 6 points in [0,1]^2, measure = 10 * x, labels alternate 0/1.
        let xs = vec![0.1, 0.2, 0.3, 0.6, 0.7, 0.8];
        let ys = vec![0.1, 0.2, 0.3, 0.6, 0.7, 0.8];
        let measure: Vec<f64> = xs.iter().map(|x| 10.0 * x).collect();
        Dataset::from_columns(vec![xs, ys])
            .unwrap()
            .with_labels(vec![0, 1, 0, 1, 0, 1])
            .unwrap()
            .with_measure("m", measure)
            .unwrap()
    }

    fn left_half() -> Region {
        Region::from_bounds(&[0.0, 0.0], &[0.45, 0.45]).unwrap()
    }

    #[test]
    fn count_and_count_per_volume() {
        let d = dataset();
        let r = left_half();
        assert_eq!(Statistic::Count.evaluate(&d, &r).unwrap(), Some(3.0));
        let cpv = Statistic::CountPerVolume.evaluate(&d, &r).unwrap().unwrap();
        assert!((cpv - 3.0 / (0.45 * 0.45)).abs() < 1e-9);
    }

    #[test]
    fn empty_region_behaviour() {
        let d = dataset();
        let empty = Region::from_bounds(&[0.90, 0.90], &[0.95, 0.95]).unwrap();
        assert_eq!(Statistic::Count.evaluate(&d, &empty).unwrap(), Some(0.0));
        assert_eq!(
            Statistic::average_of_measure()
                .evaluate(&d, &empty)
                .unwrap(),
            None
        );
        assert_eq!(
            Statistic::average_of_measure()
                .evaluate_or(&d, &empty, -1.0)
                .unwrap(),
            -1.0
        );
        assert_eq!(
            Statistic::Ratio { label: 1 }.evaluate(&d, &empty).unwrap(),
            Some(0.0)
        );
    }

    #[test]
    fn average_sum_min_max_variance_median_of_measure() {
        let d = dataset();
        let r = left_half();
        // Measure values inside: 1.0, 2.0, 3.0.
        let avg = Statistic::average_of_measure().evaluate(&d, &r).unwrap();
        assert_eq!(avg, Some(2.0));
        assert_eq!(
            Statistic::Sum(Target::Measure).evaluate(&d, &r).unwrap(),
            Some(6.0)
        );
        assert_eq!(
            Statistic::Min(Target::Measure).evaluate(&d, &r).unwrap(),
            Some(1.0)
        );
        assert_eq!(
            Statistic::Max(Target::Measure).evaluate(&d, &r).unwrap(),
            Some(3.0)
        );
        let var = Statistic::Variance(Target::Measure)
            .evaluate(&d, &r)
            .unwrap()
            .unwrap();
        assert!((var - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(
            Statistic::Median(Target::Measure).evaluate(&d, &r).unwrap(),
            Some(2.0)
        );
    }

    #[test]
    fn median_of_even_count() {
        let d = dataset();
        let r = Region::from_bounds(&[0.0, 0.0], &[0.65, 0.65]).unwrap();
        // Measure values inside: 1,2,3,6 -> median 2.5.
        assert_eq!(
            Statistic::Median(Target::Measure).evaluate(&d, &r).unwrap(),
            Some(2.5)
        );
    }

    #[test]
    fn dimension_target_ignores_its_own_dimension() {
        let d = dataset();
        // Region narrow in y but the statistic averages dimension 1 (y), so membership is only
        // constrained on x: points x <= 0.45 are 0.1, 0.2, 0.3 with y values 0.1, 0.2, 0.3.
        let r = Region::from_bounds(&[0.0, 0.0], &[0.45, 0.01]).unwrap();
        let avg_y = Statistic::average_of_dimension(1).evaluate(&d, &r).unwrap();
        assert!((avg_y.unwrap() - 0.2).abs() < 1e-12);
        // With a dimension-0 target instead, dimension 1's narrow bound applies and only the
        // point (0.1, 0.1) falls inside... none actually because y <= 0.01 excludes it? y=0.1 > 0.01.
        let avg_x = Statistic::average_of_dimension(0).evaluate(&d, &r).unwrap();
        assert!(avg_x.is_none());
    }

    #[test]
    fn ratio_statistic() {
        let d = dataset();
        let r = left_half();
        // Labels inside: 0, 1, 0 -> ratio of label 1 is 1/3.
        let ratio = Statistic::Ratio { label: 1 }.evaluate(&d, &r).unwrap();
        assert!((ratio.unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_requires_labels_and_measure_requires_measure() {
        let bare = Dataset::from_columns(vec![vec![0.1, 0.2], vec![0.1, 0.2]]).unwrap();
        let r = Region::unit_cube(2);
        assert!(Statistic::Ratio { label: 1 }.evaluate(&bare, &r).is_err());
        assert!(Statistic::average_of_measure().evaluate(&bare, &r).is_err());
    }

    #[test]
    fn unknown_dimension_is_an_error() {
        let d = dataset();
        let r = left_half();
        assert!(Statistic::average_of_dimension(9).evaluate(&d, &r).is_err());
    }

    #[test]
    fn needs_flags_and_empty_values() {
        assert!(Statistic::Ratio { label: 0 }.needs_labels());
        assert!(!Statistic::Count.needs_labels());
        assert!(Statistic::average_of_measure().needs_measure());
        assert!(!Statistic::average_of_dimension(0).needs_measure());
        assert_eq!(Statistic::Count.empty_value(), Some(0.0));
        assert_eq!(Statistic::average_of_measure().empty_value(), None);
    }
}
