//! The statistics engine: maps a (dataset, region) pair to the scalar statistic `y = f(x, l)`
//! (Definition 2 / Definition 3 of the paper).
//!
//! This module is the expensive "true function" `f` that SuRF's surrogate models replace at
//! mining time. Any statistic — decomposable (COUNT, SUM) or non-decomposable (MEDIAN) — can
//! be expressed; the paper's experiments use the *density* (point count) and *aggregate*
//! (average) statistics plus the class-ratio statistic of the Human-Activity use case.

use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::error::DataError;
use crate::index::{IndexKind, RegionIndex};
use crate::region::Region;

/// Which values a value-aggregating statistic operates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Target {
    /// One of the `d` data dimensions. Per Definition 2, the targeted dimension is *not*
    /// constrained by the region when evaluating the statistic.
    Dimension(usize),
    /// The dataset's measure column (e.g. a crime index), which never bounds regions.
    Measure,
}

/// A statistic of interest `y = f(x, l)` extracted from the data vectors inside a region.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Statistic {
    /// Number of data vectors inside the region (the paper's *density* statistic).
    Count,
    /// Number of data vectors per unit of region volume.
    CountPerVolume,
    /// Average of the target values over the region (the paper's *aggregate* statistic).
    Average(Target),
    /// Sum of the target values over the region.
    Sum(Target),
    /// Minimum of the target values over the region.
    Min(Target),
    /// Maximum of the target values over the region.
    Max(Target),
    /// Population variance of the target values over the region.
    Variance(Target),
    /// Median of the target values over the region (a non-decomposable statistic).
    Median(Target),
    /// Fraction of points inside the region carrying the given class label (the Human-Activity
    /// use case: ratio of `activity = stand`).
    Ratio {
        /// The class label whose frequency is measured.
        label: u32,
    },
}

impl Statistic {
    /// Convenience constructor: average of a data dimension.
    pub fn average_of_dimension(dimension: usize) -> Self {
        Statistic::Average(Target::Dimension(dimension))
    }

    /// Convenience constructor: average of the measure column.
    pub fn average_of_measure() -> Self {
        Statistic::Average(Target::Measure)
    }

    /// Whether this statistic needs the dataset's measure column.
    pub fn needs_measure(&self) -> bool {
        matches!(
            self,
            Statistic::Average(Target::Measure)
                | Statistic::Sum(Target::Measure)
                | Statistic::Min(Target::Measure)
                | Statistic::Max(Target::Measure)
                | Statistic::Variance(Target::Measure)
                | Statistic::Median(Target::Measure)
        )
    }

    /// Whether this statistic needs the dataset's label column.
    pub fn needs_labels(&self) -> bool {
        matches!(self, Statistic::Ratio { .. })
    }

    /// Value reported for an empty region. `Some` for statistics with a natural neutral value
    /// (counts and ratios), `None` for undefined aggregates.
    pub fn empty_value(&self) -> Option<f64> {
        match self {
            Statistic::Count | Statistic::CountPerVolume | Statistic::Ratio { .. } => Some(0.0),
            _ => None,
        }
    }

    /// Evaluates the statistic over the subset of `dataset` covered by `region`.
    ///
    /// Returns `Ok(None)` when the region contains no points and the statistic is undefined on
    /// empty sets (averages, medians, ...). Count-like statistics return `Ok(Some(0.0))`.
    ///
    /// Evaluation is served by the dataset's spatial index (see [`crate::index`]) when one is
    /// configured — the default — making the cost sublinear in the dataset size; with
    /// [`IndexKind::Scan`] it streams a full column scan. Count-like statistics (Count,
    /// CountPerVolume, Ratio) and Min/Max/Median are identical between the two paths;
    /// Sum/Average/Variance differ only by floating-point re-association of per-cell partial
    /// sums (≲ 1e-12 relative).
    pub fn evaluate(&self, dataset: &Dataset, region: &Region) -> Result<Option<f64>, DataError> {
        self.evaluate_with(dataset, region, dataset.index_kind())
    }

    /// Like [`Statistic::evaluate`], with an explicit index choice overriding the dataset's
    /// default (the [`crate::index::IndexKind`] knob of the pipeline configuration).
    pub fn evaluate_with(
        &self,
        dataset: &Dataset,
        region: &Region,
        kind: IndexKind,
    ) -> Result<Option<f64>, DataError> {
        self.validate(dataset, region)?;
        match dataset.region_index(kind) {
            Some(index) => self.evaluate_indexed(dataset, index.as_ref(), region),
            None => self.evaluate_scan_unchecked(dataset, region),
        }
    }

    /// Evaluates the statistic with a full streaming column scan, bypassing any index — the
    /// reference path the property tests compare the indexed path against.
    pub fn evaluate_scan(
        &self,
        dataset: &Dataset,
        region: &Region,
    ) -> Result<Option<f64>, DataError> {
        self.validate(dataset, region)?;
        self.evaluate_scan_unchecked(dataset, region)
    }

    /// Validates dimensionality and label/measure requirements up front, so the index and
    /// scan paths share identical error behaviour.
    fn validate(&self, dataset: &Dataset, region: &Region) -> Result<(), DataError> {
        if region.dimensions() != dataset.dimensions() {
            return Err(DataError::DimensionMismatch {
                expected: dataset.dimensions(),
                actual: region.dimensions(),
            });
        }
        if let Some(dim) = self.ignored_dimension() {
            if dim >= dataset.dimensions() {
                return Err(DataError::UnknownDimension {
                    dimension: dim,
                    dimensions: dataset.dimensions(),
                });
            }
        }
        if self.needs_labels() && dataset.labels().is_none() {
            return Err(DataError::MissingLabels);
        }
        match self.target() {
            Some(Target::Measure) if dataset.measure().is_none() => Err(DataError::MissingMeasure),
            Some(Target::Dimension(d)) if d >= dataset.dimensions() => {
                Err(DataError::UnknownDimension {
                    dimension: d,
                    dimensions: dataset.dimensions(),
                })
            }
            _ => Ok(()),
        }
    }

    /// The index-accelerated evaluation path. Fully covered cells/nodes are answered from
    /// precomputed summaries; only boundary cells stream per-row filters. No intermediate
    /// index vector is allocated on the count/sum paths (MEDIAN materializes its values, as
    /// the scan path must too).
    fn evaluate_indexed(
        &self,
        dataset: &Dataset,
        index: &dyn RegionIndex,
        region: &Region,
    ) -> Result<Option<f64>, DataError> {
        let ignored = self.ignored_dimension();
        match self {
            Statistic::Count => Ok(Some(index.count(dataset, region, ignored) as f64)),
            Statistic::CountPerVolume => {
                let volume = region.volume();
                if volume <= 0.0 {
                    Ok(Some(0.0))
                } else {
                    Ok(Some(index.count(dataset, region, ignored) as f64 / volume))
                }
            }
            Statistic::Ratio { label } => {
                let (matching, total) = index.label_count(dataset, region, ignored, *label);
                if total == 0 {
                    Ok(Some(0.0))
                } else {
                    Ok(Some(matching as f64 / total as f64))
                }
            }
            Statistic::Median(target) => {
                let mut values = Vec::new();
                index.values_in(dataset, region, ignored, *target, &mut values)?;
                if values.is_empty() {
                    Ok(None)
                } else {
                    Ok(Some(self.aggregate(&values)))
                }
            }
            Statistic::Average(target)
            | Statistic::Sum(target)
            | Statistic::Min(target)
            | Statistic::Max(target)
            | Statistic::Variance(target) => {
                let agg = index.moments(dataset, region, ignored, *target)?;
                if agg.count == 0 {
                    return Ok(None);
                }
                let n = agg.count as f64;
                Ok(Some(match self {
                    Statistic::Average(_) => agg.sum / n,
                    Statistic::Sum(_) => agg.sum,
                    Statistic::Min(_) => agg.min,
                    Statistic::Max(_) => agg.max,
                    // Population variance from the centered second moment (Welford/Chan);
                    // clamped because merging can dip a few ulps below zero.
                    Statistic::Variance(_) => (agg.m2 / n).max(0.0),
                    _ => unreachable!("only moment statistics reach this arm"),
                }))
            }
        }
    }

    /// The streaming scan path: one pass over the columns with the membership predicate,
    /// no intermediate index vector on the count-like paths. Aggregates collect their target
    /// values (in ascending row order, exactly like the original implementation) and reuse
    /// [`Statistic::aggregate`].
    fn evaluate_scan_unchecked(
        &self,
        dataset: &Dataset,
        region: &Region,
    ) -> Result<Option<f64>, DataError> {
        let ignored = self.ignored_dimension();
        match self {
            Statistic::Count => {
                let mut count = 0usize;
                dataset.for_each_row_in(region, ignored, |_| count += 1);
                Ok(Some(count as f64))
            }
            Statistic::CountPerVolume => {
                let volume = region.volume();
                if volume <= 0.0 {
                    return Ok(Some(0.0));
                }
                let mut count = 0usize;
                dataset.for_each_row_in(region, ignored, |_| count += 1);
                Ok(Some(count as f64 / volume))
            }
            Statistic::Ratio { label } => {
                let labels = dataset.labels().ok_or(DataError::MissingLabels)?;
                let (mut matching, mut total) = (0usize, 0usize);
                dataset.for_each_row_in(region, ignored, |i| {
                    total += 1;
                    if labels[i] == *label {
                        matching += 1;
                    }
                });
                if total == 0 {
                    Ok(Some(0.0))
                } else {
                    Ok(Some(matching as f64 / total as f64))
                }
            }
            Statistic::Average(target)
            | Statistic::Sum(target)
            | Statistic::Min(target)
            | Statistic::Max(target)
            | Statistic::Variance(target)
            | Statistic::Median(target) => {
                let column = match target {
                    Target::Dimension(d) => dataset.column(*d)?,
                    Target::Measure => dataset.measure().ok_or(DataError::MissingMeasure)?,
                };
                let mut values = Vec::new();
                dataset.for_each_row_in(region, ignored, |i| values.push(column[i]));
                if values.is_empty() {
                    return Ok(None);
                }
                Ok(Some(self.aggregate(&values)))
            }
        }
    }

    /// Evaluates the statistic, substituting `default` when the statistic is undefined on the
    /// (empty) region.
    pub fn evaluate_or(
        &self,
        dataset: &Dataset,
        region: &Region,
        default: f64,
    ) -> Result<f64, DataError> {
        Ok(self.evaluate(dataset, region)?.unwrap_or(default))
    }

    /// The aggregation target of a value-aggregating statistic, `None` for count-likes.
    fn target(&self) -> Option<Target> {
        match self {
            Statistic::Average(t)
            | Statistic::Sum(t)
            | Statistic::Min(t)
            | Statistic::Max(t)
            | Statistic::Variance(t)
            | Statistic::Median(t) => Some(*t),
            _ => None,
        }
    }

    fn ignored_dimension(&self) -> Option<usize> {
        match self.target() {
            Some(Target::Dimension(d)) => Some(d),
            _ => None,
        }
    }

    fn aggregate(&self, values: &[f64]) -> f64 {
        debug_assert!(!values.is_empty());
        match self {
            Statistic::Average(_) => values.iter().sum::<f64>() / values.len() as f64,
            Statistic::Sum(_) => values.iter().sum(),
            Statistic::Min(_) => values.iter().copied().fold(f64::INFINITY, f64::min),
            Statistic::Max(_) => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            Statistic::Variance(_) => {
                let mean = values.iter().sum::<f64>() / values.len() as f64;
                values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64
            }
            Statistic::Median(_) => {
                let mut sorted = values.to_vec();
                sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                let mid = sorted.len() / 2;
                if sorted.len() % 2 == 1 {
                    sorted[mid]
                } else {
                    0.5 * (sorted[mid - 1] + sorted[mid])
                }
            }
            // Count-like statistics never reach aggregate().
            _ => unreachable!("aggregate called on a count-like statistic"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Dataset {
        // 6 points in [0,1]^2, measure = 10 * x, labels alternate 0/1.
        let xs = vec![0.1, 0.2, 0.3, 0.6, 0.7, 0.8];
        let ys = vec![0.1, 0.2, 0.3, 0.6, 0.7, 0.8];
        let measure: Vec<f64> = xs.iter().map(|x| 10.0 * x).collect();
        Dataset::from_columns(vec![xs, ys])
            .unwrap()
            .with_labels(vec![0, 1, 0, 1, 0, 1])
            .unwrap()
            .with_measure("m", measure)
            .unwrap()
    }

    fn left_half() -> Region {
        Region::from_bounds(&[0.0, 0.0], &[0.45, 0.45]).unwrap()
    }

    #[test]
    fn count_and_count_per_volume() {
        let d = dataset();
        let r = left_half();
        assert_eq!(Statistic::Count.evaluate(&d, &r).unwrap(), Some(3.0));
        let cpv = Statistic::CountPerVolume.evaluate(&d, &r).unwrap().unwrap();
        assert!((cpv - 3.0 / (0.45 * 0.45)).abs() < 1e-9);
    }

    #[test]
    fn empty_region_behaviour() {
        let d = dataset();
        let empty = Region::from_bounds(&[0.90, 0.90], &[0.95, 0.95]).unwrap();
        assert_eq!(Statistic::Count.evaluate(&d, &empty).unwrap(), Some(0.0));
        assert_eq!(
            Statistic::average_of_measure()
                .evaluate(&d, &empty)
                .unwrap(),
            None
        );
        assert_eq!(
            Statistic::average_of_measure()
                .evaluate_or(&d, &empty, -1.0)
                .unwrap(),
            -1.0
        );
        assert_eq!(
            Statistic::Ratio { label: 1 }.evaluate(&d, &empty).unwrap(),
            Some(0.0)
        );
    }

    #[test]
    fn average_sum_min_max_variance_median_of_measure() {
        let d = dataset();
        let r = left_half();
        // Measure values inside: 1.0, 2.0, 3.0.
        let avg = Statistic::average_of_measure().evaluate(&d, &r).unwrap();
        assert_eq!(avg, Some(2.0));
        assert_eq!(
            Statistic::Sum(Target::Measure).evaluate(&d, &r).unwrap(),
            Some(6.0)
        );
        assert_eq!(
            Statistic::Min(Target::Measure).evaluate(&d, &r).unwrap(),
            Some(1.0)
        );
        assert_eq!(
            Statistic::Max(Target::Measure).evaluate(&d, &r).unwrap(),
            Some(3.0)
        );
        let var = Statistic::Variance(Target::Measure)
            .evaluate(&d, &r)
            .unwrap()
            .unwrap();
        assert!((var - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(
            Statistic::Median(Target::Measure).evaluate(&d, &r).unwrap(),
            Some(2.0)
        );
    }

    #[test]
    fn median_of_even_count() {
        let d = dataset();
        let r = Region::from_bounds(&[0.0, 0.0], &[0.65, 0.65]).unwrap();
        // Measure values inside: 1,2,3,6 -> median 2.5.
        assert_eq!(
            Statistic::Median(Target::Measure).evaluate(&d, &r).unwrap(),
            Some(2.5)
        );
    }

    #[test]
    fn dimension_target_ignores_its_own_dimension() {
        let d = dataset();
        // Region narrow in y but the statistic averages dimension 1 (y), so membership is only
        // constrained on x: points x <= 0.45 are 0.1, 0.2, 0.3 with y values 0.1, 0.2, 0.3.
        let r = Region::from_bounds(&[0.0, 0.0], &[0.45, 0.01]).unwrap();
        let avg_y = Statistic::average_of_dimension(1).evaluate(&d, &r).unwrap();
        assert!((avg_y.unwrap() - 0.2).abs() < 1e-12);
        // With a dimension-0 target instead, dimension 1's narrow bound applies and only the
        // point (0.1, 0.1) falls inside... none actually because y <= 0.01 excludes it? y=0.1 > 0.01.
        let avg_x = Statistic::average_of_dimension(0).evaluate(&d, &r).unwrap();
        assert!(avg_x.is_none());
    }

    #[test]
    fn ratio_statistic() {
        let d = dataset();
        let r = left_half();
        // Labels inside: 0, 1, 0 -> ratio of label 1 is 1/3.
        let ratio = Statistic::Ratio { label: 1 }.evaluate(&d, &r).unwrap();
        assert!((ratio.unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_requires_labels_and_measure_requires_measure() {
        let bare = Dataset::from_columns(vec![vec![0.1, 0.2], vec![0.1, 0.2]]).unwrap();
        let r = Region::unit_cube(2);
        assert!(Statistic::Ratio { label: 1 }.evaluate(&bare, &r).is_err());
        assert!(Statistic::average_of_measure().evaluate(&bare, &r).is_err());
    }

    #[test]
    fn unknown_dimension_is_an_error() {
        let d = dataset();
        let r = left_half();
        assert!(Statistic::average_of_dimension(9).evaluate(&d, &r).is_err());
    }

    #[test]
    fn missing_measure_reports_the_measure_variant() {
        let bare = Dataset::from_columns(vec![vec![0.1, 0.2], vec![0.1, 0.2]]).unwrap();
        let r = Region::unit_cube(2);
        assert_eq!(
            Statistic::average_of_measure().evaluate(&bare, &r),
            Err(DataError::MissingMeasure)
        );
        assert_eq!(
            Statistic::Ratio { label: 1 }.evaluate(&bare, &r),
            Err(DataError::MissingLabels)
        );
    }

    #[test]
    fn indexed_and_scan_paths_agree_on_every_variant() {
        use crate::index::IndexKind;
        let d = dataset();
        let regions = [
            left_half(),
            Region::from_bounds(&[0.0, 0.0], &[0.65, 0.65]).unwrap(),
            Region::from_bounds(&[0.90, 0.90], &[0.95, 0.95]).unwrap(), // empty
            Region::from_bounds(&[0.0, 0.0], &[0.45, 0.01]).unwrap(),   // ignored-dim case
        ];
        let statistics = [
            Statistic::Count,
            Statistic::CountPerVolume,
            Statistic::Ratio { label: 1 },
            Statistic::average_of_measure(),
            Statistic::average_of_dimension(1),
            Statistic::Sum(Target::Measure),
            Statistic::Min(Target::Dimension(0)),
            Statistic::Max(Target::Measure),
            Statistic::Variance(Target::Measure),
            Statistic::Median(Target::Measure),
        ];
        for statistic in statistics {
            for region in &regions {
                let scan = statistic.evaluate_scan(&d, region).unwrap();
                for kind in [IndexKind::Grid, IndexKind::KdTree] {
                    let indexed = statistic.evaluate_with(&d, region, kind).unwrap();
                    match (scan, indexed) {
                        (None, None) => {}
                        (Some(a), Some(b)) => assert!(
                            (a - b).abs() <= 1e-9 * (1.0 + a.abs()),
                            "{statistic:?} {kind:?}: scan {a} vs indexed {b}"
                        ),
                        other => panic!("{statistic:?} {kind:?}: definedness mismatch {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn needs_flags_and_empty_values() {
        assert!(Statistic::Ratio { label: 0 }.needs_labels());
        assert!(!Statistic::Count.needs_labels());
        assert!(Statistic::average_of_measure().needs_measure());
        assert!(!Statistic::average_of_dimension(0).needs_measure());
        assert_eq!(Statistic::Count.empty_value(), Some(0.0));
        assert_eq!(Statistic::average_of_measure().empty_value(), None);
    }
}
