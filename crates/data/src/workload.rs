//! Past-query workloads: the training sets `Q = {[x_m, l_m, y_m]}` used to fit surrogate
//! models (Section IV and Section V-A of the paper).
//!
//! The paper trains surrogates "using a set of past function evaluations executed across the
//! data space with centers x selected uniformly at random and region side lengths l set to
//! cover 1%–15% (uniformly) of the data domain". [`WorkloadSpec`] reproduces exactly that
//! sampling scheme; the resulting [`Workload`] exposes feature matrices in the `2d`-dimensional
//! region representation expected by the surrogate models.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::error::DataError;
use crate::region::Region;
use crate::statistic::Statistic;

/// One past region evaluation: a region and the statistic value observed for it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionEvaluation {
    /// The evaluated region.
    pub region: Region,
    /// The observed statistic `y = f(x, l)`.
    pub value: f64,
}

/// Sampling scheme for generating past-query workloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Number of region evaluations to generate.
    pub queries: usize,
    /// Minimum fraction of each domain side covered by a query region (paper: 1 %).
    pub min_coverage: f64,
    /// Maximum fraction of each domain side covered by a query region (paper: 15 %).
    pub max_coverage: f64,
    /// Value recorded when the statistic is undefined on an empty region.
    pub empty_value: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        Self {
            queries: 2_000,
            min_coverage: 0.01,
            max_coverage: 0.15,
            empty_value: 0.0,
            seed: 13,
        }
    }
}

impl WorkloadSpec {
    /// Spec with an explicit number of queries.
    pub fn with_queries(mut self, queries: usize) -> Self {
        self.queries = queries;
        self
    }

    /// Spec with an explicit coverage range (fractions of the domain side length).
    pub fn with_coverage(mut self, min_coverage: f64, max_coverage: f64) -> Self {
        self.min_coverage = min_coverage;
        self.max_coverage = max_coverage;
        self
    }

    /// Spec with an explicit seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Spec with an explicit value to record for empty regions.
    pub fn with_empty_value(mut self, empty_value: f64) -> Self {
        self.empty_value = empty_value;
        self
    }
}

/// A collection of past region evaluations for a fixed (dataset, statistic) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// The statistic the evaluations were computed with.
    pub statistic: Statistic,
    /// The evaluations.
    pub evaluations: Vec<RegionEvaluation>,
}

impl Workload {
    /// Generates a workload by sampling regions per `spec` and evaluating `statistic` over the
    /// dataset — the data-touching step that is paid once up front. Evaluations are served by
    /// the dataset's spatial index (see [`crate::index`]) when one is configured, which is
    /// the default.
    pub fn generate(
        dataset: &Dataset,
        statistic: Statistic,
        spec: &WorkloadSpec,
    ) -> Result<Workload, DataError> {
        let domain = dataset.domain()?;
        let regions = Self::sample_query_regions(&domain, spec)?;
        let mut evaluations = Vec::with_capacity(regions.len());
        for region in regions {
            let value = statistic.evaluate_or(dataset, &region, spec.empty_value)?;
            evaluations.push(RegionEvaluation { region, value });
        }
        Ok(Self::from_evaluations(statistic, evaluations))
    }

    /// Assembles a workload from already-computed region evaluations (e.g. queries evaluated
    /// in parallel by the SuRF trainer, or harvested from a production system).
    pub fn from_evaluations(statistic: Statistic, evaluations: Vec<RegionEvaluation>) -> Workload {
        Workload {
            statistic,
            evaluations,
        }
    }

    /// Samples the query regions of a workload without evaluating them — the pure, seeded
    /// part of [`Workload::generate`]. Callers owning a thread pool (e.g. the SuRF trainer)
    /// evaluate the returned regions in parallel and assemble the workload themselves; the
    /// region sequence is identical to the one `generate` evaluates.
    pub fn sample_query_regions(
        domain: &Region,
        spec: &WorkloadSpec,
    ) -> Result<Vec<Region>, DataError> {
        if spec.queries == 0 {
            return Err(DataError::Empty("workload"));
        }
        if !(spec.min_coverage > 0.0 && spec.min_coverage <= spec.max_coverage) {
            return Err(DataError::InvalidSideLength {
                dimension: 0,
                value: spec.min_coverage,
            });
        }
        let mut rng = StdRng::seed_from_u64(spec.seed);
        Ok((0..spec.queries)
            .map(|_| sample_region(domain, spec, &mut rng))
            .collect())
    }

    /// Number of evaluations.
    pub fn len(&self) -> usize {
        self.evaluations.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.evaluations.is_empty()
    }

    /// Dimensionality of the underlying regions (0 for an empty workload).
    pub fn dimensions(&self) -> usize {
        self.evaluations
            .first()
            .map(|e| e.region.dimensions())
            .unwrap_or(0)
    }

    /// Feature matrix (each row is the `2d`-dimensional `[x, l]` vector) and target vector.
    pub fn to_xy(&self) -> (Vec<Vec<f64>>, Vec<f64>) {
        let features = self
            .evaluations
            .iter()
            .map(|e| e.region.to_solution_vector())
            .collect();
        let targets = self.evaluations.iter().map(|e| e.value).collect();
        (features, targets)
    }

    /// Splits the workload into a training and a held-out part (`test_fraction` of the
    /// evaluations, shuffled with `seed`).
    pub fn train_test_split(&self, test_fraction: f64, seed: u64) -> (Workload, Workload) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut indices = crate::random::shuffled_indices(&mut rng, self.len());
        let test_size = ((self.len() as f64) * test_fraction.clamp(0.0, 1.0)).round() as usize;
        let test_indices: Vec<usize> = indices.drain(..test_size.min(self.len())).collect();
        let pick = |idx: &[usize]| Workload {
            statistic: self.statistic,
            evaluations: idx.iter().map(|&i| self.evaluations[i].clone()).collect(),
        };
        (pick(&indices), pick(&test_indices))
    }

    /// Empirical cumulative distribution function of the observed statistic values, evaluated
    /// at `value` — used to reason about the feasibility of a threshold (Eq. 5 of the paper).
    pub fn empirical_cdf(&self, value: f64) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let below = self.evaluations.iter().filter(|e| e.value <= value).count();
        below as f64 / self.len() as f64
    }

    /// Empirical quantile of the observed statistic values (`q ∈ [0, 1]`).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.is_empty() {
            return None;
        }
        let mut values: Vec<f64> = self.evaluations.iter().map(|e| e.value).collect();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let idx = ((values.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(values[idx])
    }
}

/// Samples one query region: center uniform inside the domain, half side length per dimension
/// uniform in `[min_coverage, max_coverage] × domain_side`.
fn sample_region(domain: &Region, spec: &WorkloadSpec, rng: &mut StdRng) -> Region {
    let d = domain.dimensions();
    let mut center = Vec::with_capacity(d);
    let mut half = Vec::with_capacity(d);
    for dim in 0..d {
        let lo = domain.lower_in(dim);
        let hi = domain.upper_in(dim);
        let side = hi - lo;
        center.push(rng.random_range(lo..hi));
        let coverage = rng.random_range(spec.min_coverage..=spec.max_coverage);
        half.push((coverage * side).max(f64::MIN_POSITIVE));
    }
    Region::new(center, half).expect("sampled half lengths are positive")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{SyntheticDataset, SyntheticSpec};

    fn dataset() -> Dataset {
        SyntheticDataset::generate(&SyntheticSpec::density(2, 1).with_points(2_000).with_seed(8))
            .dataset
    }

    #[test]
    fn generates_requested_number_of_evaluations() {
        let d = dataset();
        let workload = Workload::generate(
            &d,
            Statistic::Count,
            &WorkloadSpec::default().with_queries(300),
        )
        .unwrap();
        assert_eq!(workload.len(), 300);
        assert_eq!(workload.dimensions(), 2);
        assert!(!workload.is_empty());
    }

    #[test]
    fn region_sizes_respect_coverage_bounds() {
        let d = dataset();
        let spec = WorkloadSpec::default()
            .with_queries(200)
            .with_coverage(0.01, 0.15);
        let workload = Workload::generate(&d, Statistic::Count, &spec).unwrap();
        let domain = d.domain().unwrap();
        for eval in &workload.evaluations {
            for dim in 0..2 {
                let side = domain.upper_in(dim) - domain.lower_in(dim);
                let coverage = eval.region.half_lengths()[dim] / side;
                assert!(
                    (0.0099..=0.1501).contains(&coverage),
                    "coverage {coverage} outside [1%, 15%]"
                );
            }
        }
    }

    #[test]
    fn values_match_direct_evaluation() {
        let d = dataset();
        let workload = Workload::generate(
            &d,
            Statistic::Count,
            &WorkloadSpec::default().with_queries(50),
        )
        .unwrap();
        for eval in workload.evaluations.iter().take(10) {
            let direct = Statistic::Count.evaluate_or(&d, &eval.region, 0.0).unwrap();
            assert_eq!(direct, eval.value);
        }
    }

    #[test]
    fn to_xy_has_2d_features() {
        let d = dataset();
        let workload = Workload::generate(
            &d,
            Statistic::Count,
            &WorkloadSpec::default().with_queries(20),
        )
        .unwrap();
        let (x, y) = workload.to_xy();
        assert_eq!(x.len(), 20);
        assert_eq!(y.len(), 20);
        assert!(x.iter().all(|row| row.len() == 4));
    }

    #[test]
    fn train_test_split_partitions_the_workload() {
        let d = dataset();
        let workload = Workload::generate(
            &d,
            Statistic::Count,
            &WorkloadSpec::default().with_queries(100),
        )
        .unwrap();
        let (train, test) = workload.train_test_split(0.2, 3);
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 20);
        assert_eq!(train.len() + test.len(), workload.len());
    }

    #[test]
    fn cdf_and_quantile_are_consistent() {
        let d = dataset();
        let workload = Workload::generate(
            &d,
            Statistic::Count,
            &WorkloadSpec::default().with_queries(400),
        )
        .unwrap();
        let q3 = workload.quantile(0.75).unwrap();
        let cdf = workload.empirical_cdf(q3);
        assert!((0.70..=0.85).contains(&cdf), "cdf at Q3 is {cdf}");
        assert_eq!(workload.empirical_cdf(f64::INFINITY), 1.0);
        assert_eq!(workload.empirical_cdf(-1.0), 0.0);
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let d = dataset();
        assert!(Workload::generate(
            &d,
            Statistic::Count,
            &WorkloadSpec::default().with_queries(0)
        )
        .is_err());
        assert!(Workload::generate(
            &d,
            Statistic::Count,
            &WorkloadSpec::default().with_coverage(0.2, 0.1)
        )
        .is_err());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let d = dataset();
        let spec = WorkloadSpec::default().with_queries(50).with_seed(77);
        let a = Workload::generate(&d, Statistic::Count, &spec).unwrap();
        let b = Workload::generate(&d, Statistic::Count, &spec).unwrap();
        assert_eq!(a, b);
    }
}
