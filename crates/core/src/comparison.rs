//! The four-method comparison harness behind the paper's accuracy (Figures 3–4) and
//! performance (Table I) experiments.
//!
//! The methods compared are exactly the paper's:
//!
//! * **SuRF** — learned surrogate + GSO (this repository's contribution path),
//! * **Naive** — the discretized exhaustive baseline of Section II-A,
//! * **f+GlowWorm** — GSO driven by the true, data-touching statistic,
//! * **PRIM** — Friedman & Fisher bump hunting.

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use surf_data::dataset::Dataset;
use surf_data::index::IndexKind;
use surf_data::region::Region;
use surf_data::statistic::{Statistic, Target};
use surf_data::synthetic::SyntheticDataset;
use surf_ml::gbrt::GbrtParams;
use surf_optim::gso::GsoParams;
use surf_optim::naive::{NaiveParams, NaiveSearch};
use surf_optim::prim::{Prim, PrimParams};

use crate::error::SurfError;
use crate::evaluation::match_regions;
use crate::finder::{mine_regions, Surf};
use crate::objective::{Objective, Threshold};
use crate::pipeline::SurfConfig;
use crate::surrogate::{Surrogate, TrueFunctionSurrogate};

/// The region-mining methods compared by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// Learned surrogate + Glowworm Swarm Optimization.
    Surf,
    /// Discretized exhaustive search using the true statistic.
    Naive,
    /// Glowworm Swarm Optimization driven by the true statistic.
    FGlowworm,
    /// PRIM bump hunting.
    Prim,
}

impl Method {
    /// All four methods, in the paper's reporting order.
    pub const ALL: [Method; 4] = [Method::Surf, Method::Naive, Method::FGlowworm, Method::Prim];

    /// Human-readable name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Surf => "SuRF",
            Method::Naive => "Naive",
            Method::FGlowworm => "f+GlowWorm",
            Method::Prim => "PRIM",
        }
    }
}

/// Shared configuration of a comparison run.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonConfig {
    /// Objective (shape and `c`) used by SuRF, Naive and f+GlowWorm.
    pub objective: Objective,
    /// GSO parameters shared by SuRF and f+GlowWorm.
    pub gso: GsoParams,
    /// Naive baseline parameters (grid resolution, time limit).
    pub naive: NaiveParams,
    /// PRIM parameters.
    pub prim: PrimParams,
    /// Number of past region evaluations used to train SuRF's surrogate.
    pub training_queries: usize,
    /// Surrogate hyper-parameters.
    pub gbrt: GbrtParams,
    /// Smallest allowed half side length (fraction of the domain side).
    pub min_length_fraction: f64,
    /// Largest allowed half side length (fraction of the domain side).
    pub max_length_fraction: f64,
    /// Glowworm clustering radius (fraction of the solution-space diagonal).
    pub cluster_radius_fraction: f64,
    /// Report at most this many regions per method.
    pub max_reported_regions: usize,
    /// Spatial index serving the data-touching methods (Naive, f+GlowWorm, SuRF's workload
    /// generation). Identical results for every choice; `Scan` restores the original full
    /// column scans (the cost regime Table I was measured in).
    pub index_kind: IndexKind,
    /// Master seed.
    pub seed: u64,
}

impl Default for ComparisonConfig {
    fn default() -> Self {
        Self {
            objective: Objective::paper_default(),
            gso: GsoParams::paper_default(),
            naive: NaiveParams::default(),
            prim: PrimParams::paper_default(),
            training_queries: 2_000,
            gbrt: GbrtParams::quick(),
            min_length_fraction: 0.005,
            max_length_fraction: 0.5,
            cluster_radius_fraction: 0.15,
            max_reported_regions: 24,
            index_kind: IndexKind::default(),
            seed: 29,
        }
    }
}

impl ComparisonConfig {
    /// A reduced configuration for tests and quick experiment runs.
    pub fn quick() -> Self {
        Self {
            gso: GsoParams::quick(),
            naive: NaiveParams::default().with_grid(5, 4),
            training_queries: 800,
            ..Self::default()
        }
    }

    /// Builder-style override of the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style override of the Naive time limit.
    pub fn with_naive_time_limit(mut self, limit: Duration) -> Self {
        self.naive = self.naive.clone().with_time_limit(limit);
        self
    }
}

/// The outcome of running one method on one mining task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodRun {
    /// Which method produced this run.
    pub method: Method,
    /// The regions the method proposed.
    pub regions: Vec<Region>,
    /// Wall-clock time of the mining step (what Table I reports).
    pub mining_time: Duration,
    /// One-off training time (non-zero only for SuRF).
    pub training_time: Duration,
    /// Fraction of the candidate space examined (Naive only; 1.0 for the others).
    pub coverage: f64,
    /// Whether the method hit its time limit before finishing.
    pub timed_out: bool,
}

impl MethodRun {
    /// Mean best IoU of the proposed regions against ground truth (the Fig. 3 metric).
    pub fn mean_iou(&self, ground_truth: &[Region]) -> f64 {
        match_regions(&self.regions, ground_truth).mean_iou
    }
}

/// The comparison harness.
#[derive(Debug, Clone)]
pub struct MethodComparison {
    config: ComparisonConfig,
}

impl MethodComparison {
    /// Creates a harness with the given configuration.
    pub fn new(config: ComparisonConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ComparisonConfig {
        &self.config
    }

    /// Runs one method on a dataset for the given statistic and threshold.
    pub fn run(
        &self,
        method: Method,
        dataset: &Dataset,
        statistic: Statistic,
        threshold: Threshold,
    ) -> Result<MethodRun, SurfError> {
        match method {
            Method::Surf => self.run_surf(dataset, statistic, threshold),
            Method::Naive => self.run_naive(dataset, statistic, threshold),
            Method::FGlowworm => self.run_f_glowworm(dataset, statistic, threshold),
            Method::Prim => self.run_prim(dataset, statistic),
        }
    }

    /// Runs one method on a synthetic dataset, using the dataset's own statistic and paper
    /// threshold.
    pub fn run_on_synthetic(
        &self,
        method: Method,
        synthetic: &SyntheticDataset,
    ) -> Result<MethodRun, SurfError> {
        self.run(
            method,
            &synthetic.dataset,
            synthetic.statistic,
            Threshold::above(synthetic.threshold),
        )
    }

    /// Runs all four methods on a synthetic dataset.
    pub fn run_all_on_synthetic(
        &self,
        synthetic: &SyntheticDataset,
    ) -> Result<Vec<MethodRun>, SurfError> {
        Method::ALL
            .iter()
            .map(|&m| self.run_on_synthetic(m, synthetic))
            .collect()
    }

    fn run_surf(
        &self,
        dataset: &Dataset,
        statistic: Statistic,
        threshold: Threshold,
    ) -> Result<MethodRun, SurfError> {
        let config = SurfConfig {
            statistic,
            threshold,
            objective: self.config.objective,
            training_queries: self.config.training_queries,
            gbrt: self.config.gbrt.clone(),
            gso: self.config.gso.clone(),
            min_length_fraction: self.config.min_length_fraction,
            max_length_fraction: self.config.max_length_fraction,
            cluster_radius_fraction: self.config.cluster_radius_fraction,
            index_kind: self.config.index_kind,
            seed: self.config.seed,
            ..SurfConfig::default()
        };
        let surf = Surf::fit(dataset, &config)?;
        let outcome = surf.mine();
        let mut regions = outcome.region_list();
        regions.truncate(self.config.max_reported_regions);
        Ok(MethodRun {
            method: Method::Surf,
            regions,
            mining_time: outcome.mining_time,
            training_time: surf.training_report().training_time,
            coverage: 1.0,
            timed_out: false,
        })
    }

    fn run_f_glowworm(
        &self,
        dataset: &Dataset,
        statistic: Statistic,
        threshold: Threshold,
    ) -> Result<MethodRun, SurfError> {
        let domain = dataset.domain()?;
        let surrogate = TrueFunctionSurrogate::new(dataset, statistic, 0.0)
            .with_index_kind(self.config.index_kind);
        let start = Instant::now();
        let outcome = mine_regions(
            &surrogate,
            &domain,
            self.config.objective,
            threshold,
            &self.config.gso,
            None,
            self.config.min_length_fraction,
            self.config.max_length_fraction,
            self.config.cluster_radius_fraction,
        );
        let mut regions = outcome.region_list();
        regions.truncate(self.config.max_reported_regions);
        Ok(MethodRun {
            method: Method::FGlowworm,
            regions,
            mining_time: start.elapsed(),
            training_time: Duration::ZERO,
            coverage: 1.0,
            timed_out: false,
        })
    }

    fn run_naive(
        &self,
        dataset: &Dataset,
        statistic: Statistic,
        threshold: Threshold,
    ) -> Result<MethodRun, SurfError> {
        let domain = dataset.domain()?;
        let surrogate = TrueFunctionSurrogate::new(dataset, statistic, 0.0)
            .with_index_kind(self.config.index_kind);
        let objective = self.config.objective;
        let start = Instant::now();
        let result = NaiveSearch::new(self.config.naive.clone()).search(&domain, |region| {
            let value = surrogate.predict(region);
            objective.evaluate(value, region, &threshold)
        });
        let regions: Vec<Region> = result
            .top_k(self.config.max_reported_regions)
            .iter()
            .map(|s| s.region.clone())
            .collect();
        Ok(MethodRun {
            method: Method::Naive,
            regions,
            mining_time: start.elapsed(),
            training_time: Duration::ZERO,
            coverage: result.coverage(),
            timed_out: result.timed_out,
        })
    }

    fn run_prim(&self, dataset: &Dataset, statistic: Statistic) -> Result<MethodRun, SurfError> {
        let points: Vec<Vec<f64>> = (0..dataset.len()).map(|i| dataset.row(i).values).collect();
        // PRIM maximizes the mean of a response attribute. For aggregate statistics that is the
        // measure column; for density statistics no meaningful response exists (the paper's
        // point), so a flat response is used and PRIM degenerates gracefully.
        let response: Vec<f64> = match statistic {
            Statistic::Average(Target::Measure) | Statistic::Sum(Target::Measure) => dataset
                .measure()
                .ok_or(SurfError::Data(surf_data::error::DataError::MissingMeasure))?
                .to_vec(),
            Statistic::Average(Target::Dimension(d)) => dataset.column(d)?.to_vec(),
            Statistic::Ratio { label } => dataset
                .labels()
                .ok_or(SurfError::Data(surf_data::error::DataError::MissingLabels))?
                .iter()
                .map(|&l| if l == label { 1.0 } else { 0.0 })
                .collect(),
            _ => vec![1.0; dataset.len()],
        };
        let start = Instant::now();
        let boxes = Prim::new(self.config.prim.clone()).fit(&points, &response);
        let regions: Vec<Region> = boxes
            .into_iter()
            .take(self.config.max_reported_regions)
            .map(|b| b.region)
            .collect();
        Ok(MethodRun {
            method: Method::Prim,
            regions,
            mining_time: start.elapsed(),
            training_time: Duration::ZERO,
            coverage: 1.0,
            timed_out: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surf_data::synthetic::SyntheticSpec;

    fn density_synthetic() -> SyntheticDataset {
        SyntheticDataset::generate(
            &SyntheticSpec::density(2, 1)
                .with_points(3_000)
                .with_points_per_region(900)
                .with_seed(31),
        )
    }

    fn aggregate_synthetic() -> SyntheticDataset {
        SyntheticDataset::generate(
            &SyntheticSpec::aggregate(2, 1)
                .with_points(3_000)
                .with_seed(33),
        )
    }

    #[test]
    fn method_names_and_order() {
        assert_eq!(Method::ALL.len(), 4);
        assert_eq!(Method::Surf.name(), "SuRF");
        assert_eq!(Method::FGlowworm.name(), "f+GlowWorm");
    }

    #[test]
    fn surf_and_f_glowworm_find_the_dense_region() {
        let synthetic = density_synthetic();
        // Threshold low enough to be satisfiable with the quick settings.
        let harness = MethodComparison::new(ComparisonConfig::quick().with_seed(5));
        let threshold = Threshold::above(400.0);
        for method in [Method::Surf, Method::FGlowworm] {
            let run = harness
                .run(method, &synthetic.dataset, Statistic::Count, threshold)
                .unwrap();
            assert!(!run.regions.is_empty(), "{} found nothing", method.name());
            let iou = run.mean_iou(&synthetic.ground_truth);
            assert!(iou > 0.1, "{} IoU {iou}", method.name());
            assert!(!run.timed_out);
        }
    }

    #[test]
    fn naive_examines_the_whole_grid_without_a_time_limit() {
        let synthetic = density_synthetic();
        let harness = MethodComparison::new(ComparisonConfig::quick());
        let run = harness
            .run(
                Method::Naive,
                &synthetic.dataset,
                Statistic::Count,
                Threshold::above(400.0),
            )
            .unwrap();
        assert!((run.coverage - 1.0).abs() < 1e-12);
        assert!(!run.regions.is_empty());
        assert!(run.mean_iou(&synthetic.ground_truth) > 0.05);
    }

    #[test]
    fn prim_works_on_aggregate_but_not_density() {
        let aggregate = aggregate_synthetic();
        let harness = MethodComparison::new(ComparisonConfig::quick());
        let run = harness.run_on_synthetic(Method::Prim, &aggregate).unwrap();
        assert!(!run.regions.is_empty());
        let aggregate_iou = run.mean_iou(&aggregate.ground_truth);
        assert!(aggregate_iou > 0.2, "PRIM aggregate IoU {aggregate_iou}");

        let density = density_synthetic();
        let run = harness.run_on_synthetic(Method::Prim, &density).unwrap();
        let density_iou = run.mean_iou(&density.ground_truth);
        assert!(
            density_iou < aggregate_iou,
            "PRIM should do worse on density ({density_iou}) than aggregate ({aggregate_iou})"
        );
    }

    #[test]
    fn prim_requires_a_measure_for_aggregate_statistics() {
        let density = density_synthetic();
        let harness = MethodComparison::new(ComparisonConfig::quick());
        let result = harness.run(
            Method::Prim,
            &density.dataset,
            Statistic::average_of_measure(),
            Threshold::above(2.0),
        );
        assert!(result.is_err());
    }

    #[test]
    fn naive_time_limit_reports_partial_coverage() {
        let synthetic = density_synthetic();
        let config = ComparisonConfig {
            naive: NaiveParams::default()
                .with_grid(6, 6)
                .with_time_limit(Duration::from_millis(5)),
            // Pin the unindexed scan path: the timeout/coverage reporting is what is under
            // test here, and it needs the original per-candidate full-scan cost regime (the
            // grid index finishes all 1,296 candidates well inside 5 ms).
            index_kind: IndexKind::Scan,
            ..ComparisonConfig::quick()
        };
        let harness = MethodComparison::new(config);
        let run = harness
            .run(
                Method::Naive,
                &synthetic.dataset,
                Statistic::Count,
                Threshold::above(400.0),
            )
            .unwrap();
        // 1296 candidates, each requiring a full data scan of 3,000 points: 5 ms cannot finish.
        assert!(run.timed_out);
        assert!(run.coverage < 1.0);
    }

    #[test]
    fn indexed_naive_finishes_where_the_scan_times_out() {
        let synthetic = density_synthetic();
        // Generous deadline: the indexed sweep takes single-digit milliseconds, so 2 s only
        // fails on a genuine regression, not on CI scheduling noise.
        let limit = Duration::from_secs(2);
        let run_with = |kind: IndexKind| {
            let config = ComparisonConfig {
                naive: NaiveParams::default()
                    .with_grid(6, 6)
                    .with_time_limit(limit),
                index_kind: kind,
                ..ComparisonConfig::quick()
            };
            MethodComparison::new(config)
                .run(
                    Method::Naive,
                    &synthetic.dataset,
                    Statistic::Count,
                    Threshold::above(400.0),
                )
                .unwrap()
        };
        let indexed = run_with(IndexKind::Grid);
        assert!(
            !indexed.timed_out,
            "indexed naive should finish in {limit:?}"
        );
        assert!((indexed.coverage - 1.0).abs() < 1e-12);
        // Identical candidate grid, identical statistic values: the indexed sweep proposes
        // the same regions the scan sweep would.
        let scanned = run_with(IndexKind::Scan);
        if !scanned.timed_out {
            assert_eq!(indexed.regions, scanned.regions);
        }
    }
}
