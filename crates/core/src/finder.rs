//! The SuRF region-mining engine.
//!
//! [`Surf::fit`] pays the one-off costs — generating (or accepting) a past-query workload,
//! training the gradient-boosted surrogate and fitting the KDE guide — and returns a reusable
//! engine. [`Surf::mine`] then answers an analyst request (threshold + direction) by running
//! Glowworm Swarm Optimization over the `2d`-dimensional region space against the surrogate,
//! never touching the data. The same fitted engine can serve many thresholds and users, which
//! is exactly the amortization argument of the paper's Table I discussion.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use surf_data::dataset::Dataset;
use surf_data::region::Region;
use surf_data::workload::{Workload, WorkloadSpec};
use surf_ml::gbrt::Gbrt;
use surf_ml::kde::KernelDensity;
use surf_optim::fitness::{FitnessFunction, SolutionBounds};
use surf_optim::gso::{GlowwormSwarm, GsoParams};

use crate::error::SurfError;
use crate::objective::{Objective, Threshold};
use crate::pipeline::SurfConfig;
use crate::surrogate::{GbrtSurrogate, Surrogate, SurrogateTrainer, TrainingReport};

/// The fitness landscape GSO explores: candidate solution vectors `[x, l]` are decoded into
/// regions, scored by the objective applied to the surrogate's statistic estimate, and
/// optionally weighted by the KDE mass they capture (Eq. 8).
pub struct RegionFitness<'a> {
    surrogate: &'a dyn Surrogate,
    objective: Objective,
    threshold: Threshold,
    domain: Region,
    kde: Option<&'a KernelDensity>,
    min_half_lengths: Vec<f64>,
    max_half_lengths: Vec<f64>,
}

impl<'a> RegionFitness<'a> {
    /// Creates the fitness landscape for a mining request.
    pub fn new(
        surrogate: &'a dyn Surrogate,
        objective: Objective,
        threshold: Threshold,
        domain: Region,
        kde: Option<&'a KernelDensity>,
        min_length_fraction: f64,
        max_length_fraction: f64,
    ) -> Self {
        let d = domain.dimensions();
        let min_half_lengths: Vec<f64> = (0..d)
            .map(|dim| {
                let side = domain.upper_in(dim) - domain.lower_in(dim);
                (min_length_fraction * side).max(f64::MIN_POSITIVE)
            })
            .collect();
        let max_half_lengths: Vec<f64> = (0..d)
            .map(|dim| {
                let side = domain.upper_in(dim) - domain.lower_in(dim);
                (max_length_fraction * side).max(f64::MIN_POSITIVE)
            })
            .collect();
        Self {
            surrogate,
            objective,
            threshold,
            domain,
            kde,
            min_half_lengths,
            max_half_lengths,
        }
    }

    /// Decodes a solution vector into a region, clamping half side lengths into the allowed
    /// range.
    pub fn decode(&self, solution: &[f64]) -> Option<Region> {
        let d = self.domain.dimensions();
        if solution.len() != 2 * d {
            return None;
        }
        let mut center = Vec::with_capacity(d);
        let mut half = Vec::with_capacity(d);
        for dim in 0..d {
            let c = solution[dim].clamp(self.domain.lower_in(dim), self.domain.upper_in(dim));
            let l = solution[d + dim]
                .abs()
                .clamp(self.min_half_lengths[dim], self.max_half_lengths[dim]);
            center.push(c);
            half.push(l);
        }
        Region::new(center, half).ok()
    }
}

impl FitnessFunction for RegionFitness<'_> {
    fn bounds(&self) -> SolutionBounds {
        let d = self.domain.dimensions();
        let mut lower = Vec::with_capacity(2 * d);
        let mut upper = Vec::with_capacity(2 * d);
        for dim in 0..d {
            lower.push(self.domain.lower_in(dim));
            upper.push(self.domain.upper_in(dim));
        }
        lower.extend_from_slice(&self.min_half_lengths);
        upper.extend_from_slice(&self.max_half_lengths);
        SolutionBounds::new(lower, upper)
    }

    fn fitness(&self, solution: &[f64]) -> f64 {
        match self.decode(solution) {
            Some(region) => {
                let estimate = self.surrogate.predict(&region);
                self.objective.evaluate(estimate, &region, &self.threshold)
            }
            None => f64::NEG_INFINITY,
        }
    }

    /// Batched evaluation of a whole swarm: all candidates are decoded, the surrogate
    /// estimates the entire batch in one [`Surrogate::predict_batch`] call (one blocked pass
    /// of the compiled ensemble for [`GbrtSurrogate`]), and the objective is applied per
    /// candidate. Produces exactly the values the scalar [`RegionFitness::fitness`] would.
    fn fitness_batch(&self, solutions: &[f64], dim: usize, out: &mut [f64]) {
        let mut regions = Vec::with_capacity(out.len());
        let mut slots = Vec::with_capacity(out.len());
        for (slot, candidate) in solutions.chunks(dim).enumerate() {
            match self.decode(candidate) {
                Some(region) => {
                    slots.push(slot);
                    regions.push(region);
                }
                None => out[slot] = f64::NEG_INFINITY,
            }
        }
        let estimates = self.surrogate.predict_batch(&regions);
        for ((&slot, region), estimate) in slots.iter().zip(&regions).zip(estimates) {
            out[slot] = self.objective.evaluate(estimate, region, &self.threshold);
        }
    }

    fn density_weight(&self, solution: &[f64]) -> f64 {
        match (self.kde, self.decode(solution)) {
            (Some(kde), Some(region)) => kde
                .box_probability(&region.lower(), &region.upper())
                .unwrap_or(0.0)
                .max(1e-12),
            _ => 1.0,
        }
    }
}

/// One mined region together with its predicted statistic and objective value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinedRegion {
    /// The region proposed by SuRF.
    pub region: Region,
    /// The surrogate's statistic estimate for the region.
    pub predicted_value: f64,
    /// The objective value the region achieved.
    pub objective_value: f64,
}

/// The outcome of one mining request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MiningOutcome {
    /// The distinct regions found, sorted by descending objective value.
    pub regions: Vec<MinedRegion>,
    /// Fraction of the swarm that converged onto constraint-satisfying candidates (Fig. 1's
    /// "84 % of the particles").
    pub swarm_valid_fraction: f64,
    /// Mean objective of valid glowworms after each GSO iteration (the Fig. 9 traces).
    pub convergence_trace: Vec<f64>,
    /// Number of GSO iterations executed.
    pub iterations_run: usize,
    /// Whether GSO converged before exhausting its iteration budget.
    pub converged: bool,
    /// Number of surrogate evaluations performed during mining.
    pub surrogate_evaluations: usize,
    /// Wall-clock time of the mining step (excludes surrogate training).
    pub mining_time: Duration,
}

impl MiningOutcome {
    /// The regions only, without their scores.
    pub fn region_list(&self) -> Vec<Region> {
        self.regions.iter().map(|m| m.region.clone()).collect()
    }

    /// The best (highest objective) region, if any.
    pub fn best(&self) -> Option<&MinedRegion> {
        self.regions.first()
    }
}

/// Mines regions with GSO against an arbitrary surrogate. This is the engine shared by SuRF
/// (learned surrogate) and the `f+GlowWorm` baseline (true-function surrogate).
#[allow(clippy::too_many_arguments)]
pub fn mine_regions(
    surrogate: &dyn Surrogate,
    domain: &Region,
    objective: Objective,
    threshold: Threshold,
    gso: &GsoParams,
    kde: Option<&KernelDensity>,
    min_length_fraction: f64,
    max_length_fraction: f64,
    cluster_radius_fraction: f64,
) -> MiningOutcome {
    let start = Instant::now();
    let fitness = RegionFitness::new(
        surrogate,
        objective,
        threshold,
        domain.clone(),
        kde,
        min_length_fraction,
        max_length_fraction,
    );
    let result = GlowwormSwarm::new(gso.clone()).run(&fitness);
    let radius = cluster_radius_fraction * fitness.bounds().diagonal();
    let representatives = result.cluster_representatives(radius);

    let mut regions: Vec<MinedRegion> = representatives
        .into_iter()
        .filter_map(|glowworm| {
            let region = fitness.decode(&glowworm.position)?;
            let predicted_value = surrogate.predict(&region);
            let objective_value = objective.evaluate(predicted_value, &region, &threshold);
            if objective_value.is_finite() && threshold.satisfied(predicted_value) {
                Some(MinedRegion {
                    region,
                    predicted_value,
                    objective_value,
                })
            } else {
                None
            }
        })
        .collect();
    regions.sort_by(|a, b| {
        b.objective_value
            .partial_cmp(&a.objective_value)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    MiningOutcome {
        regions,
        swarm_valid_fraction: result.valid_fraction(),
        convergence_trace: result.mean_fitness_history.clone(),
        iterations_run: result.iterations_run,
        converged: result.converged,
        surrogate_evaluations: result.fitness_evaluations,
        mining_time: start.elapsed(),
    }
}

/// A fitted SuRF engine: trained surrogate + KDE guide + domain, ready to serve mining
/// requests.
pub struct Surf {
    config: SurfConfig,
    domain: Region,
    surrogate: GbrtSurrogate,
    kde: Option<KernelDensity>,
    training_report: TrainingReport,
    workload_size: usize,
}

/// The complete fitted state of a [`Surf`] engine, exposed as plain serializable data so a
/// surrogate trained in one process can be persisted and served from another (the
/// amortization argument of the paper's Table I, across process boundaries).
///
/// [`Surf::export_state`] extracts it; [`Surf::from_state`] rebuilds a working engine,
/// re-validating the configuration and the model's feature width. Everything else the engine
/// holds (spatial indexes, datasets) is training-time machinery that a restored engine does
/// not need: mining never touches the data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurfState {
    /// The configuration the engine was fitted with.
    pub config: SurfConfig,
    /// The data domain the engine searches.
    pub domain: Region,
    /// The fitted gradient-boosted ensemble backing the surrogate.
    pub model: Gbrt,
    /// Data dimensionality `d` (the model consumes `2d` features).
    pub dimensions: usize,
    /// The fitted KDE movement guide, when one was trained.
    pub kde: Option<KernelDensity>,
    /// Cost and accuracy report of the surrogate training step.
    pub training_report: TrainingReport,
    /// Number of past region evaluations the surrogate was trained on.
    pub workload_size: usize,
}

impl Surf {
    /// Trains a SuRF engine on a dataset: generates the past-query workload, fits the
    /// surrogate (optionally grid-searched) and the KDE guide.
    ///
    /// The workload evaluation — `training_queries` region statistics, by far the dominant
    /// training cost (the paper's Fig. 6) — is served by the spatial index selected with
    /// [`SurfConfig::index_kind`] (built once up front) and fans out over
    /// [`SurfConfig::threads`] OS threads; the resulting workload is identical to the
    /// sequential, unindexed one for every thread count and index choice.
    pub fn fit(dataset: &Dataset, config: &SurfConfig) -> Result<Surf, SurfError> {
        config.validate()?;
        let workload_spec = WorkloadSpec::default()
            .with_queries(config.training_queries)
            .with_coverage(config.workload_coverage.0, config.workload_coverage.1)
            .with_empty_value(config.empty_value)
            .with_seed(config.seed);
        let domain = dataset.domain()?;
        let regions = Workload::sample_query_regions(&domain, &workload_spec)?;
        // Build the index before fanning out, so worker threads share the cached handle
        // instead of racing to construct it.
        dataset.region_index(config.index_kind);
        let threads = surf_ml::parallel::resolve_threads(config.threads);
        let values = surf_ml::parallel::parallel_map(regions, threads, |region| {
            let value = config
                .statistic
                .evaluate_with(dataset, region, config.index_kind)?
                .unwrap_or(config.empty_value);
            Ok::<_, surf_data::error::DataError>(surf_data::workload::RegionEvaluation {
                region: region.clone(),
                value,
            })
        });
        let mut evaluations = Vec::with_capacity(values.len());
        for evaluation in values {
            evaluations.push(evaluation?);
        }
        let workload = Workload::from_evaluations(config.statistic, evaluations);
        Self::fit_with_workload(dataset, &workload, config)
    }

    /// Trains a SuRF engine from an existing past-query workload (e.g. queries harvested from
    /// a production system) instead of generating one.
    pub fn fit_with_workload(
        dataset: &Dataset,
        workload: &Workload,
        config: &SurfConfig,
    ) -> Result<Surf, SurfError> {
        config.validate()?;
        if workload.dimensions() != dataset.dimensions() {
            return Err(SurfError::InvalidConfig(format!(
                "workload dimensionality {} does not match dataset dimensionality {}",
                workload.dimensions(),
                dataset.dimensions()
            )));
        }
        let domain = dataset.domain()?;

        let trainer = SurrogateTrainer {
            params: config.gbrt.clone(),
            hypertune: config.hypertune,
            threads: config.threads,
            seed: config.seed,
            engine: config.inference_engine,
            ..SurrogateTrainer::default()
        };
        let (surrogate, training_report) = trainer.train(workload)?;

        let kde = if config.use_kde_guide {
            let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5eed_cafe);
            let sample = dataset.sample(config.kde_sample.max(16), &mut rng)?;
            let points: Vec<Vec<f64>> = (0..sample.len()).map(|i| sample.row(i).values).collect();
            Some(KernelDensity::fit_scott(&points)?)
        } else {
            None
        };

        Ok(Surf {
            config: config.clone(),
            domain,
            surrogate,
            kde,
            training_report,
            workload_size: workload.len(),
        })
    }

    /// Mines regions for the threshold given in the configuration.
    pub fn mine(&self) -> MiningOutcome {
        self.mine_with(self.config.threshold)
    }

    /// Mines regions for a different threshold, reusing the already-trained surrogate (no
    /// retraining — the point of SuRF).
    pub fn mine_with(&self, threshold: Threshold) -> MiningOutcome {
        self.mine_with_surrogate(threshold, &self.surrogate)
    }

    /// Mines regions evaluating through a caller-supplied surrogate instead of the engine's
    /// own. The full mining policy (coverage clamp, RMSE margin, raw-threshold fallback) is
    /// applied unchanged; only the evaluation channel differs.
    ///
    /// The intended `surrogate` is an *observationally identical transport wrapper* around
    /// [`Surf::surrogate`] — e.g. the serving layer's coalescing queue, which routes each
    /// swarm iteration's `predict_batch` into a shared compiled-ensemble call fused with
    /// concurrent requests. Because fused evaluation is bit-identical per row, such a
    /// wrapper leaves the mining outcome bit-identical too. A surrogate that answers
    /// differently yields outcomes that reflect *it*, not the engine.
    pub fn mine_with_surrogate(
        &self,
        threshold: Threshold,
        surrogate: &dyn Surrogate,
    ) -> MiningOutcome {
        // The surrogate has only seen training regions inside the workload coverage range;
        // outside it the gradient-boosted trees extrapolate (flatly), which GSO happily
        // exploits — e.g. slivers far below the trained sizes that the surrogate still
        // scores above the threshold. Keep the search inside the trained support where it
        // overlaps the configured length range.
        let (cov_min, cov_max) = self.config.workload_coverage;
        let mut min_fraction = self.config.min_length_fraction.max(cov_min);
        let mut max_fraction = self.config.max_length_fraction.min(cov_max);
        if min_fraction >= max_fraction {
            // Disjoint ranges: the analyst explicitly asked for sizes the surrogate was not
            // trained on; honour the configuration rather than searching an empty range.
            min_fraction = self.config.min_length_fraction;
            max_fraction = self.config.max_length_fraction;
        }

        // Mine against a conservative threshold first: shifting the cut-off by a fraction of
        // the surrogate's held-out RMSE keeps GSO away from the error band at the constraint
        // boundary, where the objective's size penalty would otherwise park every glowworm on
        // regions the true function rejects.
        let shift = if self.training_report.holdout_rmse.is_finite() {
            self.config.mining_margin_rmse * self.training_report.holdout_rmse
        } else {
            0.0
        };
        let margined = match threshold.direction {
            crate::objective::Direction::Above => Threshold::above(threshold.value + shift),
            crate::objective::Direction::Below => Threshold::below(threshold.value - shift),
        };
        // GSO fitness evaluation inherits the pipeline's thread knob when left automatic
        // (an explicit thread count on the GSO parameters themselves wins).
        let mut gso = self.config.gso.clone();
        if gso.threads == 0 {
            gso.threads = surf_ml::parallel::resolve_threads(self.config.threads);
        }
        let mine = |threshold: Threshold| {
            mine_regions(
                surrogate,
                &self.domain,
                self.config.objective,
                threshold,
                &gso,
                self.kde.as_ref(),
                min_fraction,
                max_fraction,
                self.config.cluster_radius_fraction,
            )
        };
        let outcome = mine(margined);
        if outcome.regions.is_empty() && shift > 0.0 {
            // The conservative constraint is infeasible under the surrogate (e.g. a small
            // "below" threshold with a large RMSE); honour the analyst's raw threshold.
            return mine(threshold);
        }
        outcome
    }

    /// Extracts the engine's complete fitted state for persistence (see [`SurfState`]).
    pub fn export_state(&self) -> SurfState {
        SurfState {
            config: self.config.clone(),
            domain: self.domain.clone(),
            model: self.surrogate.model().clone(),
            dimensions: self.surrogate.dimensions(),
            kde: self.kde.clone(),
            training_report: self.training_report.clone(),
            workload_size: self.workload_size,
        }
    }

    /// Rebuilds a working engine from previously exported state, re-validating the
    /// configuration and the model's feature width. The restored engine answers [`Surf::mine`]
    /// / [`Surf::mine_with`] identically to the engine that exported the state.
    pub fn from_state(state: SurfState) -> Result<Surf, SurfError> {
        state.config.validate()?;
        if state.domain.dimensions() != state.dimensions {
            return Err(SurfError::InvalidConfig(format!(
                "domain dimensionality {} does not match the exported dimensionality {}",
                state.domain.dimensions(),
                state.dimensions
            )));
        }
        let surrogate = GbrtSurrogate::from_model_with_engine(
            state.model,
            state.dimensions,
            state.config.inference_engine,
        )?;
        Ok(Surf {
            config: state.config,
            domain: state.domain,
            surrogate,
            kde: state.kde,
            training_report: state.training_report,
            workload_size: state.workload_size,
        })
    }

    /// The trained surrogate.
    pub fn surrogate(&self) -> &GbrtSurrogate {
        &self.surrogate
    }

    /// The data domain the engine searches.
    pub fn domain(&self) -> &Region {
        &self.domain
    }

    /// Cost and accuracy report of the surrogate training step.
    pub fn training_report(&self) -> &TrainingReport {
        &self.training_report
    }

    /// Number of past region evaluations the surrogate was trained on.
    pub fn workload_size(&self) -> usize {
        self.workload_size
    }

    /// The configuration the engine was fitted with.
    pub fn config(&self) -> &SurfConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::surrogate::TrueFunctionSurrogate;
    use surf_data::iou::average_best_iou;
    use surf_data::statistic::Statistic;
    use surf_data::synthetic::{SyntheticDataset, SyntheticSpec};

    fn quick_config(threshold: f64) -> SurfConfig {
        SurfConfig::builder()
            .statistic(Statistic::Count)
            .threshold(Threshold::above(threshold))
            .training_queries(900)
            .gbrt(surf_ml::gbrt::GbrtParams::quick())
            .gso(GsoParams::quick().with_iterations(60))
            .kde_sample(400)
            .seed(3)
            .build()
    }

    fn dense_dataset() -> SyntheticDataset {
        SyntheticDataset::generate(
            &SyntheticSpec::density(2, 1)
                .with_points(4_000)
                .with_points_per_region(1_200)
                .with_seed(11),
        )
    }

    #[test]
    fn surf_finds_regions_overlapping_the_ground_truth() {
        let synthetic = dense_dataset();
        let config = quick_config(600.0);
        let surf = Surf::fit(&synthetic.dataset, &config).unwrap();
        let outcome = surf.mine();
        assert!(!outcome.regions.is_empty(), "no regions found");
        assert!(outcome.swarm_valid_fraction > 0.0);
        let iou = average_best_iou(&outcome.region_list(), &synthetic.ground_truth);
        assert!(iou > 0.15, "IoU with ground truth too low: {iou}");
        // Every proposed region must satisfy the constraint under the surrogate.
        assert!(outcome
            .regions
            .iter()
            .all(|m| m.predicted_value > 600.0 && m.objective_value.is_finite()));
        // Regions are sorted by objective.
        for pair in outcome.regions.windows(2) {
            assert!(pair[0].objective_value >= pair[1].objective_value);
        }
        assert!(outcome.best().is_some());
    }

    #[test]
    fn mine_with_reuses_the_surrogate_for_new_thresholds() {
        let synthetic = dense_dataset();
        let surf = Surf::fit(&synthetic.dataset, &quick_config(400.0)).unwrap();
        let strict = surf.mine_with(Threshold::above(900.0));
        let lenient = surf.mine_with(Threshold::above(100.0));
        // A stricter threshold cannot admit more of the swarm than a lenient one.
        assert!(lenient.swarm_valid_fraction >= strict.swarm_valid_fraction);
        assert_eq!(surf.workload_size(), 900);
        assert!(surf.training_report().training_examples > 0);
        assert_eq!(surf.domain().dimensions(), 2);
        assert_eq!(surf.config().seed, 3);
    }

    #[test]
    fn region_fitness_rejects_malformed_solutions() {
        let synthetic = dense_dataset();
        let surrogate = TrueFunctionSurrogate::new(&synthetic.dataset, Statistic::Count, 0.0);
        let fitness = RegionFitness::new(
            &surrogate,
            Objective::paper_default(),
            Threshold::above(500.0),
            synthetic.dataset.domain().unwrap(),
            None,
            0.005,
            0.5,
        );
        // Wrong width.
        assert!(fitness.fitness(&[0.5, 0.5, 0.1]).is_infinite());
        assert!(fitness.decode(&[0.5, 0.5, 0.1]).is_none());
        // A solution over the dense region is valid and finite.
        let gt = &synthetic.ground_truth[0];
        let solution = gt.to_solution_vector();
        assert!(fitness.fitness(&solution).is_finite());
        // Bounds have 2d entries.
        assert_eq!(fitness.bounds().dimensions(), 4);
        // Without a KDE the density weight defaults to 1.
        assert_eq!(fitness.density_weight(&solution), 1.0);
    }

    #[test]
    fn fit_with_workload_validates_dimensions() {
        let synthetic = dense_dataset();
        let other = SyntheticDataset::generate(
            &SyntheticSpec::density(3, 1).with_points(1_000).with_seed(1),
        );
        let workload = surf_data::workload::Workload::generate(
            &other.dataset,
            Statistic::Count,
            &surf_data::workload::WorkloadSpec::default().with_queries(50),
        )
        .unwrap();
        let config = quick_config(100.0);
        assert!(Surf::fit_with_workload(&synthetic.dataset, &workload, &config).is_err());
    }

    #[test]
    fn invalid_config_is_rejected_at_fit_time() {
        let synthetic = dense_dataset();
        let mut config = quick_config(100.0);
        config.training_queries = 0;
        assert!(Surf::fit(&synthetic.dataset, &config).is_err());
    }

    #[test]
    fn exported_state_rebuilds_an_identical_engine() {
        let synthetic = dense_dataset();
        let surf = Surf::fit(&synthetic.dataset, &quick_config(600.0)).unwrap();
        let state = surf.export_state();

        // Through JSON, as the serving layer persists it.
        let json = serde_json::to_string(&state).unwrap();
        let restored_state: SurfState = serde_json::from_str(&json).unwrap();
        assert_eq!(state, restored_state);

        let restored = Surf::from_state(restored_state).unwrap();
        assert_eq!(restored.workload_size(), surf.workload_size());
        assert_eq!(restored.domain(), surf.domain());
        // Identical surrogate predictions, hence identical mining outcomes.
        let probe = Region::new(vec![0.4, 0.6], vec![0.05, 0.08]).unwrap();
        assert_eq!(
            surf.surrogate().predict(&probe),
            restored.surrogate().predict(&probe)
        );
        assert_eq!(surf.mine().regions, restored.mine().regions);
    }

    #[test]
    fn batched_surrogate_mining_matches_scalar_mining_exactly() {
        /// Forces the default (scalar) `Surrogate::predict_batch` path while delegating
        /// single predictions — the "batching off" side of the invariance.
        struct ScalarOnly<'a>(&'a GbrtSurrogate);
        impl Surrogate for ScalarOnly<'_> {
            fn predict(&self, region: &Region) -> f64 {
                self.0.predict(region)
            }
            fn dimensions(&self) -> usize {
                Surrogate::dimensions(self.0)
            }
        }

        let synthetic = dense_dataset();
        let surf = Surf::fit(&synthetic.dataset, &quick_config(600.0)).unwrap();
        let gso = surf.config().gso.clone().with_threads(1);
        let mine = |surrogate: &dyn Surrogate| {
            mine_regions(
                surrogate,
                surf.domain(),
                surf.config().objective,
                Threshold::above(600.0),
                &gso,
                None,
                0.01,
                0.15,
                surf.config().cluster_radius_fraction,
            )
        };
        let batched = mine(surf.surrogate());
        let scalar = mine(&ScalarOnly(surf.surrogate()));
        // The compiled batch path must be bit-identical to the scalar path, so the entire
        // mining outcome (regions, scores, traces, convergence) coincides.
        assert_eq!(batched.regions, scalar.regions);
        // Trace entries are NaN while the whole swarm is infeasible, so compare bitwise.
        assert_eq!(
            batched.convergence_trace.len(),
            scalar.convergence_trace.len()
        );
        for (a, b) in batched
            .convergence_trace
            .iter()
            .zip(&scalar.convergence_trace)
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(batched.iterations_run, scalar.iterations_run);
        assert_eq!(batched.swarm_valid_fraction, scalar.swarm_valid_fraction);

        // Spot-check the surrogate-level contract directly on a few probe regions.
        let probes: Vec<Region> = (1..6)
            .map(|i| {
                Region::new(
                    vec![0.15 * i as f64, 0.9 - 0.1 * i as f64],
                    vec![0.05, 0.07],
                )
                .unwrap()
            })
            .collect();
        let batch = surf.surrogate().predict_batch(&probes);
        for (region, value) in probes.iter().zip(&batch) {
            assert_eq!(value.to_bits(), surf.surrogate().predict(region).to_bits());
        }
    }

    #[test]
    fn from_state_rejects_inconsistent_state() {
        let synthetic = dense_dataset();
        let surf = Surf::fit(&synthetic.dataset, &quick_config(600.0)).unwrap();

        let mut bad = surf.export_state();
        bad.config.training_queries = 0;
        assert!(Surf::from_state(bad).is_err());

        let mut bad = surf.export_state();
        bad.dimensions = 3;
        assert!(Surf::from_state(bad).is_err());
    }
}
