//! Error type for the SuRF pipeline.

use std::fmt;

use surf_data::error::DataError;
use surf_ml::error::MlError;

/// Errors raised while configuring, training or running SuRF.
#[derive(Debug, Clone, PartialEq)]
pub enum SurfError {
    /// An error bubbled up from the data substrate.
    Data(DataError),
    /// An error bubbled up from the learning substrate.
    Ml(MlError),
    /// The configuration is inconsistent (the message explains what is wrong).
    InvalidConfig(String),
    /// Mining produced no candidate regions (e.g. an unreachable threshold).
    NoRegionsFound,
}

impl fmt::Display for SurfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SurfError::Data(e) => write!(f, "data error: {e}"),
            SurfError::Ml(e) => write!(f, "learning error: {e}"),
            SurfError::InvalidConfig(message) => write!(f, "invalid configuration: {message}"),
            SurfError::NoRegionsFound => write!(f, "no regions satisfying the threshold found"),
        }
    }
}

impl std::error::Error for SurfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SurfError::Data(e) => Some(e),
            SurfError::Ml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for SurfError {
    fn from(e: DataError) -> Self {
        SurfError::Data(e)
    }
}

impl From<MlError> for SurfError {
    fn from(e: MlError) -> Self {
        SurfError::Ml(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let data_error: SurfError = DataError::MissingLabels.into();
        assert!(matches!(data_error, SurfError::Data(_)));
        assert!(data_error.to_string().contains("data error"));

        let ml_error: SurfError = MlError::EmptyTrainingSet.into();
        assert!(matches!(ml_error, SurfError::Ml(_)));
        assert!(ml_error.to_string().contains("learning error"));

        let config = SurfError::InvalidConfig("bad".into());
        assert!(config.to_string().contains("bad"));
        assert!(SurfError::NoRegionsFound.to_string().contains("threshold"));
    }

    #[test]
    fn source_is_preserved() {
        use std::error::Error;
        let e: SurfError = DataError::MissingLabels.into();
        assert!(e.source().is_some());
        assert!(SurfError::NoRegionsFound.source().is_none());
    }
}
