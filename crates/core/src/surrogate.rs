//! Surrogate models: the cheap stand-ins for the expensive back-end statistic evaluation
//! (Definition 3 and Section IV of the paper).
//!
//! A [`Surrogate`] maps a region to an estimate of the statistic `y = f(x, l)`. Two
//! implementations are provided:
//!
//! * [`TrueFunctionSurrogate`] — evaluates the real statistic over the dataset; this is the
//!   expensive path used by the `f+GlowWorm` and `Naive` baselines.
//! * [`GbrtSurrogate`] — a gradient-boosted ensemble trained on past region evaluations; this
//!   is SuRF's `f̂`, whose evaluation cost is independent of the dataset size `N`.
//!
//! [`SurrogateTrainer`] encapsulates the (one-off) training step, optionally running the
//! paper's 144-combination grid search with K-fold cross-validation.

use std::time::{Duration, Instant};

use surf_data::dataset::Dataset;
use surf_data::region::Region;
use surf_data::statistic::Statistic;
use surf_data::workload::Workload;
use surf_ml::compiled::CompiledEnsemble;
use surf_ml::cv::KFold;
use surf_ml::gbrt::{Gbrt, GbrtParams};
use surf_ml::grid::{GbrtGrid, GridSearch};
use surf_ml::matrix::FeatureMatrix;
use surf_ml::metrics::rmse;
use surf_ml::qs::{InferenceEngine, QuickScorerEnsemble};

use crate::error::SurfError;

/// A model producing statistic estimates for arbitrary regions.
pub trait Surrogate: Sync {
    /// Estimated statistic for the region.
    fn predict(&self, region: &Region) -> f64;

    /// Estimated statistics for a batch of regions, in request order. The default delegates
    /// to [`Surrogate::predict`] region by region; [`GbrtSurrogate`] overrides it to route
    /// the whole batch through its selected inference engine in one blocked pass. Overrides
    /// must return exactly the value `predict` would for every region.
    fn predict_batch(&self, regions: &[Region]) -> Vec<f64> {
        regions.iter().map(|r| self.predict(r)).collect()
    }

    /// Like [`Surrogate::predict_batch`], writing into a caller-owned buffer so steady-state
    /// callers (e.g. the serving layer's coalescing queue) reuse one allocation across
    /// batches. `out` must hold exactly `regions.len()` slots; every slot is overwritten.
    /// Overrides must produce exactly the values `predict_batch` would.
    fn predict_batch_into(&self, regions: &[Region], out: &mut [f64]) {
        debug_assert_eq!(regions.len(), out.len());
        for (slot, region) in out.iter_mut().zip(regions) {
            *slot = self.predict(region);
        }
    }

    /// Data dimensionality `d` the surrogate expects.
    fn dimensions(&self) -> usize;

    /// Whether evaluating the surrogate touches the underlying data (true only for the
    /// true-function surrogate; drives the cost accounting of the comparison harness).
    fn touches_data(&self) -> bool {
        false
    }
}

/// The true statistic `f`, evaluated over the dataset — expensive but exact. Evaluation is
/// served by the dataset's spatial index (see `surf_data::index`), configurable per
/// surrogate with [`TrueFunctionSurrogate::with_index_kind`].
pub struct TrueFunctionSurrogate<'a> {
    dataset: &'a Dataset,
    statistic: Statistic,
    empty_value: f64,
    index_kind: surf_data::index::IndexKind,
}

impl<'a> TrueFunctionSurrogate<'a> {
    /// Creates a true-function surrogate. `empty_value` is reported for regions containing no
    /// points when the statistic is undefined on empty sets. Evaluations use the dataset's
    /// default index kind unless overridden.
    pub fn new(dataset: &'a Dataset, statistic: Statistic, empty_value: f64) -> Self {
        Self {
            dataset,
            statistic,
            empty_value,
            index_kind: dataset.index_kind(),
        }
    }

    /// Overrides which spatial index serves the evaluations (the results are identical for
    /// every choice).
    pub fn with_index_kind(mut self, kind: surf_data::index::IndexKind) -> Self {
        self.index_kind = kind;
        self
    }

    /// The statistic this surrogate evaluates.
    pub fn statistic(&self) -> Statistic {
        self.statistic
    }
}

impl Surrogate for TrueFunctionSurrogate<'_> {
    fn predict(&self, region: &Region) -> f64 {
        self.statistic
            .evaluate_with(self.dataset, region, self.index_kind)
            .map(|value| value.unwrap_or(self.empty_value))
            .unwrap_or(self.empty_value)
    }

    fn dimensions(&self) -> usize {
        self.dataset.dimensions()
    }

    fn touches_data(&self) -> bool {
        true
    }
}

/// SuRF's learned surrogate `f̂`: a gradient-boosted ensemble over the `2d`-dimensional region
/// representation `[x, l]`.
///
/// Construction compiles the fitted walker into a [`CompiledEnsemble`] once — both
/// `Surf::fit` and `Surf::from_state` go through [`GbrtSurrogate::from_model_with_engine`],
/// so every serving path (single predictions, batched `/predict`, GSO/PSO mining) runs on
/// the [`InferenceEngine`] the configuration selects; choosing
/// [`InferenceEngine::QuickScorer`] additionally recompiles the ensemble into the bitvector
/// form of `surf_ml::qs`. All engines are bit-identical for every input, so the knob only
/// moves speed, never results.
#[derive(Debug, Clone, PartialEq)]
pub struct GbrtSurrogate {
    model: Gbrt,
    compiled: CompiledEnsemble,
    quickscorer: Option<QuickScorerEnsemble>,
    engine: InferenceEngine,
    qs_compile_seconds: Option<f64>,
    dimensions: usize,
}

impl GbrtSurrogate {
    /// Wraps an already-fitted model, compiling it for inference with the default engine.
    /// The model must have been trained on `2·dimensions` features.
    pub fn from_model(model: Gbrt, dimensions: usize) -> Result<Self, SurfError> {
        Self::from_model_with_engine(model, dimensions, InferenceEngine::default())
    }

    /// Wraps an already-fitted model, compiling it for inference with the selected engine.
    /// The model must have been trained on `2·dimensions` features.
    ///
    /// The struct-of-arrays form is always compiled (it also backs the walker-parity tests);
    /// the QuickScorer recompilation happens only when selected, and its one-off wall-clock
    /// cost is recorded for the `surf_qs_compile_seconds` observability gauge.
    pub fn from_model_with_engine(
        model: Gbrt,
        dimensions: usize,
        engine: InferenceEngine,
    ) -> Result<Self, SurfError> {
        if model.features() != 2 * dimensions {
            return Err(SurfError::InvalidConfig(format!(
                "model expects {} features but a {}-dimensional region space needs {}",
                model.features(),
                dimensions,
                2 * dimensions
            )));
        }
        let compiled = model.compile()?;
        let (quickscorer, qs_compile_seconds) = if engine == InferenceEngine::QuickScorer {
            let started = Instant::now();
            let quickscorer = QuickScorerEnsemble::compile(&model)?;
            (Some(quickscorer), Some(started.elapsed().as_secs_f64()))
        } else {
            (None, None)
        };
        Ok(Self {
            model,
            compiled,
            quickscorer,
            engine,
            qs_compile_seconds,
            dimensions,
        })
    }

    /// The underlying boosted ensemble (the walker form — this is what gets persisted).
    pub fn model(&self) -> &Gbrt {
        &self.model
    }

    /// The compiled struct-of-arrays ensemble (always built; serves predictions unless the
    /// engine selection says otherwise).
    pub fn compiled(&self) -> &CompiledEnsemble {
        &self.compiled
    }

    /// The QuickScorer bitvector ensemble, when that engine is selected.
    pub fn quickscorer(&self) -> Option<&QuickScorerEnsemble> {
        self.quickscorer.as_ref()
    }

    /// The inference engine serving this surrogate's predictions.
    pub fn engine(&self) -> InferenceEngine {
        self.engine
    }

    /// One-off wall-clock cost of the QuickScorer recompilation, when that engine is
    /// selected (`None` otherwise).
    pub fn qs_compile_seconds(&self) -> Option<f64> {
        self.qs_compile_seconds
    }

    /// Single-row prediction through the selected engine.
    fn predict_row(&self, features: &[f64]) -> f64 {
        match (self.engine, &self.quickscorer) {
            (InferenceEngine::QuickScorer, Some(qs)) => {
                qs.predict_one(features).unwrap_or(f64::NAN)
            }
            (InferenceEngine::Walker, _) => self.model.predict_one(features).unwrap_or(f64::NAN),
            _ => self.compiled.predict_one(features).unwrap_or(f64::NAN),
        }
    }

    /// Flattens a homogeneous batch of regions, or `None` when any region's width disagrees
    /// with the model (those batches degrade to the per-region scalar path).
    fn flatten_batch(&self, regions: &[Region]) -> Option<Vec<f64>> {
        let width = self.compiled.features();
        if regions.iter().any(|r| 2 * r.dimensions() != width) {
            return None;
        }
        let mut flat = Vec::with_capacity(regions.len() * width);
        for region in regions {
            flat.extend_from_slice(&region.to_solution_vector());
        }
        Some(flat)
    }
}

impl Surrogate for GbrtSurrogate {
    fn predict(&self, region: &Region) -> f64 {
        let features = region.to_solution_vector();
        self.predict_row(&features)
    }

    fn predict_batch(&self, regions: &[Region]) -> Vec<f64> {
        let mut out = vec![0.0; regions.len()];
        self.predict_batch_into(regions, &mut out);
        out
    }

    fn predict_batch_into(&self, regions: &[Region], out: &mut [f64]) {
        debug_assert_eq!(regions.len(), out.len());
        let width = self.compiled.features();
        // A region of the wrong dimensionality must degrade to a per-region NaN exactly as
        // the scalar path does, so mixed batches fall back to it.
        let Some(flat) = self.flatten_batch(regions) else {
            for (slot, region) in out.iter_mut().zip(regions) {
                *slot = self.predict(region);
            }
            return;
        };
        let result = match (self.engine, &self.quickscorer) {
            (InferenceEngine::QuickScorer, Some(qs)) => qs.predict_batch_into(&flat, width, out),
            (InferenceEngine::Walker, _) => {
                for (slot, row) in out.iter_mut().zip(flat.chunks(width.max(1))) {
                    *slot = self.model.predict_one(row).unwrap_or(f64::NAN);
                }
                Ok(())
            }
            _ => self.compiled.predict_batch_into(&flat, width, out),
        };
        if result.is_err() {
            out.fill(f64::NAN);
        }
    }

    fn dimensions(&self) -> usize {
        self.dimensions
    }
}

/// An alternative learned surrogate backed by ridge regression with polynomial features — the
/// "alternative ML model" the paper's footnote 2 allows. Cheaper to train and evaluate than
/// the boosted ensemble, but noticeably less accurate on sharply localized statistics; the
/// surrogate-ablation benches quantify the gap.
#[derive(Debug, Clone, PartialEq)]
pub struct RidgeSurrogate {
    model: surf_ml::linear::RidgeRegression,
    dimensions: usize,
}

impl RidgeSurrogate {
    /// Trains a ridge surrogate directly from a past-query workload.
    pub fn train(
        workload: &Workload,
        params: &surf_ml::linear::RidgeParams,
    ) -> Result<Self, SurfError> {
        if workload.is_empty() {
            return Err(SurfError::InvalidConfig(
                "cannot train a surrogate on an empty workload".into(),
            ));
        }
        let (features, targets) = workload.to_xy();
        let model = surf_ml::linear::RidgeRegression::fit(&features, &targets, params)?;
        Ok(Self {
            model,
            dimensions: workload.dimensions(),
        })
    }

    /// The underlying ridge model.
    pub fn model(&self) -> &surf_ml::linear::RidgeRegression {
        &self.model
    }
}

impl Surrogate for RidgeSurrogate {
    fn predict(&self, region: &Region) -> f64 {
        self.model
            .predict_one(&region.to_solution_vector())
            .unwrap_or(f64::NAN)
    }

    fn dimensions(&self) -> usize {
        self.dimensions
    }
}

/// What [`SurrogateTrainer::train`] reports alongside the fitted surrogate.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TrainingReport {
    /// Wall-clock time spent on training (including grid search when enabled).
    pub training_time: Duration,
    /// Number of past region evaluations used.
    pub training_examples: usize,
    /// RMSE on a held-out fraction of the workload.
    pub holdout_rmse: f64,
    /// Number of hyper-parameter combinations evaluated (1 when hyper-tuning is disabled).
    pub combinations_evaluated: usize,
    /// The hyper-parameters of the final model.
    pub chosen_params: GbrtParams,
}

/// Trains a [`GbrtSurrogate`] from a past-query workload.
#[derive(Debug, Clone)]
pub struct SurrogateTrainer {
    /// Base GBRT configuration (used directly when hyper-tuning is disabled).
    pub params: GbrtParams,
    /// Run the paper's grid search with K-fold cross-validation before the final fit.
    pub hypertune: bool,
    /// The grid to sweep when hyper-tuning.
    pub grid: GbrtGrid,
    /// Folds used by the grid search.
    pub folds: usize,
    /// Fraction of the workload held out to report the out-of-sample RMSE.
    pub holdout_fraction: f64,
    /// OS threads the grid search fans candidates out over when hyper-tuning (`0` =
    /// automatic, `1` = sequential).
    pub threads: usize,
    /// Seed for splits.
    pub seed: u64,
    /// Inference engine the fitted surrogate serves predictions with.
    pub engine: InferenceEngine,
}

impl Default for SurrogateTrainer {
    fn default() -> Self {
        Self {
            params: GbrtParams::paper_default(),
            hypertune: false,
            grid: GbrtGrid::paper_grid(),
            folds: 3,
            holdout_fraction: 0.2,
            threads: 0,
            seed: 17,
            engine: InferenceEngine::default(),
        }
    }
}

impl SurrogateTrainer {
    /// A fast trainer configuration for tests and examples.
    pub fn quick() -> Self {
        Self {
            params: GbrtParams::quick(),
            ..Self::default()
        }
    }

    /// Enables or disables hyper-parameter tuning.
    pub fn with_hypertune(mut self, hypertune: bool) -> Self {
        self.hypertune = hypertune;
        self
    }

    /// Overrides the hyper-parameter grid.
    pub fn with_grid(mut self, grid: GbrtGrid) -> Self {
        self.grid = grid;
        self
    }

    /// Overrides the base GBRT parameters.
    pub fn with_params(mut self, params: GbrtParams) -> Self {
        self.params = params;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the grid-search thread count (`0` = automatic).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Overrides the inference engine the fitted surrogate serves predictions with.
    pub fn with_engine(mut self, engine: InferenceEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Trains a surrogate on the workload and reports training cost and held-out accuracy.
    ///
    /// With the histogram training engine enabled (`params.max_bins > 0`, the default) the
    /// workload features are quantized **once** into a [`FeatureMatrix`] that is shared by
    /// reference across every grid cell and fold of the hyper-tuning search *and* the final
    /// refit; per-node histogram construction additionally fans out over the trainer's
    /// thread knob on large nodes.
    pub fn train(&self, workload: &Workload) -> Result<(GbrtSurrogate, TrainingReport), SurfError> {
        if workload.is_empty() {
            return Err(SurfError::InvalidConfig(
                "cannot train a surrogate on an empty workload".into(),
            ));
        }
        let dimensions = workload.dimensions();
        let start = Instant::now();
        let (train, holdout) = workload.train_test_split(self.holdout_fraction, self.seed);
        let (train_x, train_y) = train.to_xy();
        let (holdout_x, holdout_y) = holdout.to_xy();

        let threads = surf_ml::parallel::resolve_threads(self.threads);
        let matrix = if self.params.max_bins > 0 {
            Some(FeatureMatrix::from_rows_threaded(
                &train_x,
                self.params.max_bins,
                threads,
            )?)
        } else {
            None
        };

        let (params, combinations) = if self.hypertune {
            let folds = self.folds.clamp(2, train_x.len().max(2));
            let search = GridSearch::new(self.grid.clone(), self.params.clone())
                .with_kfold(KFold::new(folds, self.seed))
                .with_threads(threads);
            let result = match &matrix {
                Some(matrix) => search.search_matrix(matrix, &train_x, &train_y)?,
                None => search.search(&train_x, &train_y)?,
            };
            (result.best_params().clone(), result.evaluations.len())
        } else {
            (self.params.clone(), 1)
        };

        let model = match &matrix {
            Some(matrix) => Gbrt::fit_matrix_threaded(matrix, &train_y, &params, threads)?,
            None => Gbrt::fit(&train_x, &train_y, &params)?,
        };
        let holdout_rmse = if holdout_x.is_empty() {
            f64::NAN
        } else {
            rmse(&holdout_y, &model.predict(&holdout_x)?)
        };
        let surrogate = GbrtSurrogate::from_model_with_engine(model, dimensions, self.engine)?;
        let report = TrainingReport {
            training_time: start.elapsed(),
            training_examples: train_x.len(),
            holdout_rmse,
            combinations_evaluated: combinations,
            chosen_params: params,
        };
        Ok((surrogate, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surf_data::synthetic::{SyntheticDataset, SyntheticSpec};
    use surf_data::workload::WorkloadSpec;
    use surf_ml::grid::GbrtGrid;

    fn density_setup() -> (SyntheticDataset, Workload) {
        let synthetic = SyntheticDataset::generate(
            &SyntheticSpec::density(2, 1)
                .with_points(4_000)
                .with_seed(21),
        );
        let workload = Workload::generate(
            &synthetic.dataset,
            Statistic::Count,
            &WorkloadSpec::default().with_queries(1_200).with_seed(5),
        )
        .unwrap();
        (synthetic, workload)
    }

    #[test]
    fn true_function_surrogate_matches_direct_evaluation() {
        let (synthetic, workload) = density_setup();
        let surrogate = TrueFunctionSurrogate::new(&synthetic.dataset, Statistic::Count, 0.0);
        assert!(surrogate.touches_data());
        assert_eq!(surrogate.dimensions(), 2);
        assert_eq!(surrogate.statistic(), Statistic::Count);
        for eval in workload.evaluations.iter().take(5) {
            assert_eq!(surrogate.predict(&eval.region), eval.value);
        }
    }

    #[test]
    fn trained_surrogate_tracks_the_true_function() {
        let (synthetic, workload) = density_setup();
        let (surrogate, report) = SurrogateTrainer::quick().train(&workload).unwrap();
        assert!(!surrogate.touches_data());
        assert_eq!(surrogate.dimensions(), 2);
        assert!(report.training_examples > 0);
        assert_eq!(report.combinations_evaluated, 1);

        // The surrogate must broadly separate the dense GT region from an empty corner.
        let gt = &synthetic.ground_truth[0];
        let corner = Region::new(vec![0.02, 0.02], vec![0.01, 0.01]).unwrap();
        let dense_estimate = surrogate.predict(gt);
        let sparse_estimate = surrogate.predict(&corner);
        assert!(
            dense_estimate > sparse_estimate,
            "dense {dense_estimate} vs sparse {sparse_estimate}"
        );
        // Holdout RMSE should be far below the dense region's count (~1200).
        assert!(report.holdout_rmse < 600.0, "rmse {}", report.holdout_rmse);
    }

    #[test]
    fn hypertuned_training_evaluates_the_grid_and_takes_longer() {
        let (_, workload) = density_setup();
        let plain = SurrogateTrainer::quick().train(&workload).unwrap().1;
        let tuned = SurrogateTrainer::quick()
            .with_hypertune(true)
            .with_grid(GbrtGrid::quick_grid())
            .train(&workload)
            .unwrap()
            .1;
        assert_eq!(tuned.combinations_evaluated, 8);
        assert!(tuned.training_time >= plain.training_time);
    }

    #[test]
    fn exact_and_histogram_training_engines_both_serve_the_pipeline() {
        let (_, workload) = density_setup();
        let histogram = SurrogateTrainer::quick();
        assert!(
            histogram.params.max_bins > 0,
            "histogram engine is the default"
        );
        let (_, histogram_report) = histogram.train(&workload).unwrap();
        let exact = SurrogateTrainer::quick().with_params(GbrtParams::quick().with_max_bins(0));
        let (_, exact_report) = exact.train(&workload).unwrap();
        // Both engines deliver surrogates in the same accuracy class (dense region counts
        // are ~1200; both must be far below that).
        assert!(
            histogram_report.holdout_rmse < 600.0,
            "histogram rmse {}",
            histogram_report.holdout_rmse
        );
        assert!(
            exact_report.holdout_rmse < 600.0,
            "exact rmse {}",
            exact_report.holdout_rmse
        );
        assert_eq!(histogram_report.chosen_params.max_bins, 256);
        assert_eq!(exact_report.chosen_params.max_bins, 0);
    }

    #[test]
    fn from_model_validates_feature_width() {
        let x = vec![vec![0.1, 0.2, 0.3], vec![0.4, 0.5, 0.6]];
        let y = vec![1.0, 2.0];
        let model = Gbrt::fit(&x, &y, &GbrtParams::quick().with_n_estimators(2)).unwrap();
        // 3 features cannot represent a 2-dimensional region space (needs 4).
        assert!(GbrtSurrogate::from_model(model, 2).is_err());
    }

    #[test]
    fn empty_workload_is_rejected() {
        let workload = Workload {
            statistic: Statistic::Count,
            evaluations: vec![],
        };
        assert!(SurrogateTrainer::quick().train(&workload).is_err());
        assert!(
            RidgeSurrogate::train(&workload, &surf_ml::linear::RidgeParams::default()).is_err()
        );
    }

    #[test]
    fn ridge_surrogate_tracks_the_density_trend_but_less_sharply_than_gbrt() {
        let (synthetic, workload) = density_setup();
        let ridge =
            RidgeSurrogate::train(&workload, &surf_ml::linear::RidgeParams::default()).unwrap();
        assert_eq!(ridge.dimensions(), 2);
        assert!(!ridge.touches_data());

        let gt = &synthetic.ground_truth[0];
        let corner = Region::new(vec![0.02, 0.02], vec![0.01, 0.01]).unwrap();
        // Even the linear surrogate should rank the dense region above an empty corner.
        assert!(ridge.predict(gt) > ridge.predict(&corner));

        // The boosted surrogate approximates the true count of the dense region more closely.
        let (gbrt, _) = SurrogateTrainer::quick().train(&workload).unwrap();
        let truth = synthetic.dataset.count_in(gt).unwrap() as f64;
        let gbrt_error = (gbrt.predict(gt) - truth).abs();
        let ridge_error = (ridge.predict(gt) - truth).abs();
        assert!(
            gbrt_error <= ridge_error * 1.5,
            "gbrt error {gbrt_error} vs ridge error {ridge_error}"
        );
    }
}
