//! End-to-end configuration of a SuRF mining task.
//!
//! A [`SurfConfig`] bundles everything the pipeline needs: the statistic of interest, the
//! analyst threshold, the objective shape and its regularization strength `c`, the past-query
//! workload used to train the surrogate, the surrogate hyper-parameters (optionally
//! grid-searched), the GSO parameters and the KDE guidance settings.

use serde::{Deserialize, Serialize};
use surf_data::index::IndexKind;
use surf_data::statistic::Statistic;
use surf_ml::gbrt::GbrtParams;
use surf_ml::qs::InferenceEngine;
use surf_optim::gso::GsoParams;

use crate::error::SurfError;
use crate::objective::{Objective, Threshold};

/// Full configuration of a SuRF mining run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurfConfig {
    /// The statistic of interest `y = f(x, l)`.
    pub statistic: Statistic,
    /// The analyst threshold `y_R` and its direction.
    pub threshold: Threshold,
    /// The objective shape and regularization strength `c`.
    pub objective: Objective,
    /// Number of past region evaluations generated to train the surrogate.
    pub training_queries: usize,
    /// Coverage range (fractions of the domain side) of the training regions (paper: 1–15 %).
    pub workload_coverage: (f64, f64),
    /// Value recorded for regions where the statistic is undefined (empty regions).
    pub empty_value: f64,
    /// Hyper-parameters of the gradient-boosted surrogate. `gbrt.max_bins` selects the
    /// training engine: `> 0` (default 256) quantizes the workload features once into a
    /// shared columnar `FeatureMatrix` and trains with per-node gradient histograms;
    /// `0` keeps the exact per-node sorting trainer.
    pub gbrt: GbrtParams,
    /// Run the paper's grid search with cross-validation before the final surrogate fit.
    pub hypertune: bool,
    /// Inference engine serving the fitted surrogate (single predictions, batched
    /// `/predict` and swarm mining all dispatch through it). Every engine is bit-identical
    /// for every input — the knob only moves speed; see `surf_ml::qs` for the regimes.
    /// Defaults on deserialization too (the engine's `Deserialize::absent` hook), so
    /// configurations persisted before the knob existed load unchanged.
    pub inference_engine: InferenceEngine,
    /// Glowworm Swarm Optimization parameters.
    pub gso: GsoParams,
    /// Guide glowworm movement with a KDE over (a sample of) the data (Eq. 8).
    pub use_kde_guide: bool,
    /// Number of data points sampled to fit the KDE.
    pub kde_sample: usize,
    /// Smallest allowed half side length, as a fraction of the domain side.
    pub min_length_fraction: f64,
    /// Largest allowed half side length, as a fraction of the domain side.
    pub max_length_fraction: f64,
    /// Radius (as a fraction of the solution-space diagonal) used to cluster converged
    /// glowworms into distinct regions.
    pub cluster_radius_fraction: f64,
    /// OS threads used by the pipeline's data-parallel stages — workload evaluation,
    /// grid-search/cross-validation during hyper-tuning, and GSO fitness evaluation during
    /// mining. `0` = automatic (available parallelism, capped at 8), `1` = fully sequential.
    /// Results are identical for every thread count.
    pub threads: usize,
    /// Spatial index the pipeline's data-touching evaluations (workload generation in
    /// `Surf::fit` and, via the comparison harness, the true-function baselines) are served
    /// by: a uniform grid (default), a k-d tree for skewed data, or `Scan` to disable
    /// indexing. Free-standing helpers like `validity_fraction` follow the *dataset's* own
    /// default instead (`Dataset::with_index_kind`). Indexes are built lazily once per
    /// dataset and cached; results are identical for every choice (see `surf_data::index`).
    pub index_kind: IndexKind,
    /// Confidence margin applied to the threshold during mining, in units of the surrogate's
    /// held-out RMSE. GSO otherwise converges onto the surrogate's error band at the
    /// constraint boundary (the smallest region the surrogate barely scores as valid), which
    /// yields regions the true function rejects. If the margined constraint is infeasible
    /// under the surrogate, mining falls back to the raw threshold.
    pub mining_margin_rmse: f64,
    /// Master seed for workload generation, KDE sampling and GSO.
    pub seed: u64,
}

impl Default for SurfConfig {
    fn default() -> Self {
        Self {
            statistic: Statistic::Count,
            threshold: Threshold::above(0.0),
            objective: Objective::paper_default(),
            training_queries: 2_000,
            workload_coverage: (0.01, 0.15),
            empty_value: 0.0,
            gbrt: GbrtParams::paper_default(),
            hypertune: false,
            inference_engine: InferenceEngine::default(),
            gso: GsoParams::paper_default(),
            use_kde_guide: true,
            kde_sample: 2_000,
            min_length_fraction: 0.005,
            max_length_fraction: 0.5,
            cluster_radius_fraction: 0.15,
            threads: 0,
            index_kind: IndexKind::default(),
            mining_margin_rmse: 0.5,
            seed: 7,
        }
    }
}

impl SurfConfig {
    /// Starts a builder pre-populated with the paper's defaults.
    pub fn builder() -> SurfConfigBuilder {
        SurfConfigBuilder {
            config: SurfConfig::default(),
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), SurfError> {
        if self.training_queries == 0 {
            return Err(SurfError::InvalidConfig(
                "training_queries must be positive".into(),
            ));
        }
        if !(self.workload_coverage.0 > 0.0 && self.workload_coverage.0 <= self.workload_coverage.1)
        {
            return Err(SurfError::InvalidConfig(format!(
                "workload coverage range {:?} is not ordered and positive",
                self.workload_coverage
            )));
        }
        if !(self.min_length_fraction > 0.0
            && self.min_length_fraction < self.max_length_fraction
            && self.max_length_fraction <= 1.0)
        {
            return Err(SurfError::InvalidConfig(format!(
                "length fractions ({}, {}) must satisfy 0 < min < max <= 1",
                self.min_length_fraction, self.max_length_fraction
            )));
        }
        if !(self.cluster_radius_fraction > 0.0 && self.cluster_radius_fraction <= 1.0) {
            return Err(SurfError::InvalidConfig(
                "cluster_radius_fraction must be in (0, 1]".into(),
            ));
        }
        if !(self.mining_margin_rmse.is_finite() && self.mining_margin_rmse >= 0.0) {
            return Err(SurfError::InvalidConfig(
                "mining_margin_rmse must be finite and non-negative".into(),
            ));
        }
        if !self.objective.c().is_finite() || self.objective.c() < 0.0 {
            return Err(SurfError::InvalidConfig(
                "objective parameter c must be finite and non-negative".into(),
            ));
        }
        self.gbrt.validate().map_err(SurfError::from)?;
        Ok(())
    }
}

/// Builder for [`SurfConfig`].
#[derive(Debug, Clone)]
pub struct SurfConfigBuilder {
    config: SurfConfig,
}

impl SurfConfigBuilder {
    /// Sets the statistic of interest.
    pub fn statistic(mut self, statistic: Statistic) -> Self {
        self.config.statistic = statistic;
        self
    }

    /// Sets the analyst threshold.
    pub fn threshold(mut self, threshold: Threshold) -> Self {
        self.config.threshold = threshold;
        self
    }

    /// Sets the objective (shape and `c`).
    pub fn objective(mut self, objective: Objective) -> Self {
        self.config.objective = objective;
        self
    }

    /// Sets the number of past region evaluations used for surrogate training.
    pub fn training_queries(mut self, queries: usize) -> Self {
        self.config.training_queries = queries;
        self
    }

    /// Sets the training-region coverage range.
    pub fn workload_coverage(mut self, min: f64, max: f64) -> Self {
        self.config.workload_coverage = (min, max);
        self
    }

    /// Sets the GBRT hyper-parameters of the surrogate.
    pub fn gbrt(mut self, params: GbrtParams) -> Self {
        self.config.gbrt = params;
        self
    }

    /// Sets the histogram training engine's per-feature bin cap (`GbrtParams::max_bins`);
    /// `0` selects the exact (sorting) engine. See `surf_ml::matrix` for the trade-off.
    pub fn max_bins(mut self, max_bins: usize) -> Self {
        self.config.gbrt.max_bins = max_bins;
        self
    }

    /// Sets the surrogate's per-tree feature-subsampling fraction
    /// (`GbrtParams::colsample`): each boosting round draws a fresh subset of
    /// `ceil(colsample · 2d)` region features to split on — the standard variance-reduction
    /// knob. `1.0` (the default) disables the subsampling.
    pub fn colsample(mut self, colsample: f64) -> Self {
        self.config.gbrt.colsample = colsample;
        self
    }

    /// Enables or disables grid-search hyper-tuning.
    pub fn hypertune(mut self, hypertune: bool) -> Self {
        self.config.hypertune = hypertune;
        self
    }

    /// Selects the inference engine serving the fitted surrogate (bit-identical results for
    /// every choice; [`InferenceEngine::Compiled`] by default).
    pub fn inference_engine(mut self, engine: InferenceEngine) -> Self {
        self.config.inference_engine = engine;
        self
    }

    /// Sets the GSO parameters.
    pub fn gso(mut self, params: GsoParams) -> Self {
        self.config.gso = params;
        self
    }

    /// Enables or disables the KDE movement guide (Eq. 8).
    pub fn kde_guide(mut self, enabled: bool) -> Self {
        self.config.use_kde_guide = enabled;
        self
    }

    /// Sets the KDE sample size.
    pub fn kde_sample(mut self, sample: usize) -> Self {
        self.config.kde_sample = sample;
        self
    }

    /// Sets the allowed half-side-length range (fractions of the domain side).
    pub fn length_fractions(mut self, min: f64, max: f64) -> Self {
        self.config.min_length_fraction = min;
        self.config.max_length_fraction = max;
        self
    }

    /// Sets the value recorded for empty regions.
    pub fn empty_value(mut self, value: f64) -> Self {
        self.config.empty_value = value;
        self
    }

    /// Sets the glowworm clustering radius (fraction of the solution-space diagonal).
    pub fn cluster_radius(mut self, fraction: f64) -> Self {
        self.config.cluster_radius_fraction = fraction;
        self
    }

    /// Sets the confidence margin used while mining, in units of the surrogate's held-out
    /// RMSE (0 disables the margin).
    pub fn mining_margin(mut self, margin: f64) -> Self {
        self.config.mining_margin_rmse = margin;
        self
    }

    /// Sets the thread count of the pipeline's data-parallel stages (`0` = automatic,
    /// `1` = sequential).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Sets the spatial index serving the pipeline's data-touching evaluations
    /// ([`IndexKind::Grid`] by default; [`IndexKind::Scan`] disables indexing).
    pub fn index_kind(mut self, kind: IndexKind) -> Self {
        self.config.index_kind = kind;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> SurfConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surf_optim::gso::GsoParams;

    #[test]
    fn builder_overrides_defaults() {
        let config = SurfConfig::builder()
            .statistic(Statistic::Count)
            .threshold(Threshold::above(100.0))
            .objective(Objective::log(2.0))
            .training_queries(500)
            .workload_coverage(0.02, 0.2)
            .hypertune(true)
            .gso(GsoParams::quick())
            .kde_guide(false)
            .kde_sample(100)
            .length_fractions(0.01, 0.4)
            .empty_value(-1.0)
            .cluster_radius(0.1)
            .index_kind(IndexKind::KdTree)
            .max_bins(128)
            .colsample(0.75)
            .seed(99)
            .build();
        assert_eq!(config.threshold, Threshold::above(100.0));
        assert_eq!(config.training_queries, 500);
        assert!(config.hypertune);
        assert!(!config.use_kde_guide);
        assert_eq!(config.seed, 99);
        assert_eq!(config.objective.c(), 2.0);
        assert_eq!(config.index_kind, IndexKind::KdTree);
        assert_eq!(config.gbrt.max_bins, 128);
        assert_eq!(config.gbrt.colsample, 0.75);
        assert!(config.validate().is_ok());
    }

    #[test]
    fn default_config_is_valid() {
        assert!(SurfConfig::default().validate().is_ok());
    }

    #[test]
    fn inference_engine_round_trips_and_defaults_when_absent() {
        use surf_ml::qs::InferenceEngine;

        let config = SurfConfig::builder()
            .inference_engine(InferenceEngine::QuickScorer)
            .build();
        let json = serde_json::to_string(&config).unwrap();
        let restored: SurfConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(restored.inference_engine, InferenceEngine::QuickScorer);

        // Configurations persisted before the knob existed carry no `inference_engine`
        // key; deserialization must fall back to the default engine, not error.
        let legacy = {
            let serde::Value::Object(mut entries) = serde_json::from_str::<serde::Value>(&json)
                .expect("config serializes to an object")
            else {
                panic!("config serializes to an object");
            };
            entries.retain(|(key, _)| key != "inference_engine");
            serde_json::to_string(&serde::Value::Object(entries)).unwrap()
        };
        let restored: SurfConfig = serde_json::from_str(&legacy).unwrap();
        assert_eq!(restored.inference_engine, InferenceEngine::Compiled);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let config = SurfConfig {
            training_queries: 0,
            ..SurfConfig::default()
        };
        assert!(config.validate().is_err());

        let config = SurfConfig {
            workload_coverage: (0.3, 0.1),
            ..SurfConfig::default()
        };
        assert!(config.validate().is_err());

        let config = SurfConfig {
            min_length_fraction: 0.9,
            max_length_fraction: 0.5,
            ..SurfConfig::default()
        };
        assert!(config.validate().is_err());

        let config = SurfConfig {
            cluster_radius_fraction: 0.0,
            ..SurfConfig::default()
        };
        assert!(config.validate().is_err());

        let config = SurfConfig {
            objective: Objective::log(f64::NAN),
            ..SurfConfig::default()
        };
        assert!(config.validate().is_err());

        let config = SurfConfig {
            mining_margin_rmse: -1.0,
            ..SurfConfig::default()
        };
        assert!(config.validate().is_err());

        let config = SurfConfig {
            gbrt: GbrtParams::paper_default().with_n_estimators(0),
            ..SurfConfig::default()
        };
        assert!(config.validate().is_err());

        let config = SurfConfig {
            gbrt: GbrtParams::paper_default().with_max_bins(1 << 17),
            ..SurfConfig::default()
        };
        assert!(config.validate().is_err());

        let config = SurfConfig {
            gbrt: GbrtParams::paper_default().with_colsample(0.0),
            ..SurfConfig::default()
        };
        assert!(config.validate().is_err());
    }
}
