//! # surf-core
//!
//! The SuRF pipeline proper, assembled from the substrates of the workspace:
//!
//! * [`objective`] — the size-regularized objective functions of the paper (Eq. 2 and the
//!   logarithmic form of Eq. 4) together with the threshold/direction abstraction.
//! * [`surrogate`] — the surrogate-model abstraction: the expensive true function `f`
//!   (touching the data) and the cheap learned approximation `f̂` (a gradient-boosted
//!   ensemble trained on past region evaluations), plus the trainer that produces it.
//! * [`finder`] — the [`finder::Surf`] engine: train a surrogate once, then mine all regions
//!   satisfying an analyst threshold with Glowworm Swarm Optimization.
//! * [`pipeline`] — the [`pipeline::SurfConfig`] describing a mining task end to end.
//! * [`evaluation`] — IoU-based accuracy evaluation against ground-truth regions and
//!   validity checks against the true function.
//! * [`comparison`] — the four-method comparison harness (SuRF, Naive, f+GlowWorm, PRIM)
//!   behind the paper's Figures 3–4 and Table I.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comparison;
pub mod error;
pub mod evaluation;
pub mod finder;
pub mod objective;
pub mod pipeline;
pub mod surrogate;

pub use error::SurfError;
pub use finder::{MinedRegion, MiningOutcome, Surf, SurfState};
pub use objective::{Direction, Objective, Threshold};
pub use pipeline::SurfConfig;
pub use surrogate::{GbrtSurrogate, Surrogate, TrueFunctionSurrogate};
