//! Objective functions for region mining (Section II of the paper).
//!
//! Given an analyst threshold `y_R`, a direction (regions whose statistic should be *above*
//! or *below* the threshold) and a size-regularization strength `c`, two objective shapes are
//! provided:
//!
//! * [`RatioObjective`] — the plain ratio of Eq. 2, `J = Δ / (Π_i l_i)^c`,
//! * [`LogObjective`] — the logarithmic form of Eq. 4, `𝒥 = log Δ − c Σ_i log l_i`,
//!
//! where `Δ = y_R − f(x, l)` for the *below* direction and `Δ = f(x, l) − y_R` for *above*.
//! The logarithm is undefined for `Δ ≤ 0`, so the log objective *implicitly rejects* regions
//! violating the constraint (they evaluate to `-inf`) — the property Figure 7 of the paper
//! demonstrates and the reason SuRF uses it inside GSO.

use serde::{Deserialize, Serialize};
use surf_data::region::Region;

/// Whether interesting regions lie above or below the threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Seek regions with `f(x, l) > y_R`.
    Above,
    /// Seek regions with `f(x, l) < y_R`.
    Below,
}

/// An analyst threshold `y_R` with its direction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Threshold {
    /// The cut-off value `y_R`.
    pub value: f64,
    /// Whether interesting regions exceed or stay below the cut-off.
    pub direction: Direction,
}

impl Threshold {
    /// Regions whose statistic exceeds `value` are interesting.
    pub fn above(value: f64) -> Self {
        Self {
            value,
            direction: Direction::Above,
        }
    }

    /// Regions whose statistic is below `value` are interesting.
    pub fn below(value: f64) -> Self {
        Self {
            value,
            direction: Direction::Below,
        }
    }

    /// The signed margin `Δ`: positive exactly when the constraint is satisfied.
    pub fn margin(&self, statistic: f64) -> f64 {
        match self.direction {
            Direction::Above => statistic - self.value,
            Direction::Below => self.value - statistic,
        }
    }

    /// Whether a statistic value satisfies the constraint.
    pub fn satisfied(&self, statistic: f64) -> bool {
        self.margin(statistic) > 0.0
    }
}

/// The ratio objective of Eq. 2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RatioObjective {
    /// Size-regularization exponent `c`.
    pub c: f64,
}

impl RatioObjective {
    /// Evaluates `J = Δ / (Π_i l_i)^c`. Unlike the log form this is defined (and negative)
    /// for constraint-violating regions, which is why GSO can be misled by it (Fig. 7 bottom).
    pub fn evaluate(&self, statistic: f64, region: &Region, threshold: &Threshold) -> f64 {
        let margin = threshold.margin(statistic);
        let penalty = region.size_penalty().powf(self.c);
        if penalty <= 0.0 || !penalty.is_finite() {
            return f64::NEG_INFINITY;
        }
        margin / penalty
    }
}

/// The logarithmic objective of Eq. 4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogObjective {
    /// Size-regularization exponent `c` (the L1 weight on the log side lengths).
    pub c: f64,
}

impl LogObjective {
    /// Evaluates `𝒥 = log Δ − c Σ_i log l_i`, returning `-inf` when `Δ ≤ 0` (the region
    /// violates the constraint) so optimizers treat it as invalid.
    pub fn evaluate(&self, statistic: f64, region: &Region, threshold: &Threshold) -> f64 {
        let margin = threshold.margin(statistic);
        if margin <= 0.0 || !margin.is_finite() {
            return f64::NEG_INFINITY;
        }
        let log_size: f64 = region.half_lengths().iter().map(|l| l.ln()).sum();
        margin.ln() - self.c * log_size
    }
}

/// Either objective shape, selected by configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Objective {
    /// The logarithmic objective of Eq. 4 (SuRF's default).
    Log(LogObjective),
    /// The ratio objective of Eq. 2.
    Ratio(RatioObjective),
}

impl Objective {
    /// The paper's default: logarithmic objective with `c = 4`.
    pub fn paper_default() -> Self {
        Objective::Log(LogObjective { c: 4.0 })
    }

    /// Logarithmic objective with the given `c`.
    pub fn log(c: f64) -> Self {
        Objective::Log(LogObjective { c })
    }

    /// Ratio objective with the given `c`.
    pub fn ratio(c: f64) -> Self {
        Objective::Ratio(RatioObjective { c })
    }

    /// The regularization strength `c`.
    pub fn c(&self) -> f64 {
        match self {
            Objective::Log(o) => o.c,
            Objective::Ratio(o) => o.c,
        }
    }

    /// Evaluates the objective for a region whose statistic (true or surrogate-predicted) is
    /// `statistic`. Higher is better; `-inf` marks invalid regions.
    pub fn evaluate(&self, statistic: f64, region: &Region, threshold: &Threshold) -> f64 {
        match self {
            Objective::Log(o) => o.evaluate(statistic, region, threshold),
            Objective::Ratio(o) => o.evaluate(statistic, region, threshold),
        }
    }

    /// Whether the objective rejects constraint-violating regions outright (true for the log
    /// form).
    pub fn rejects_invalid(&self) -> bool {
        matches!(self, Objective::Log(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(half: &[f64]) -> Region {
        Region::new(vec![0.5; half.len()], half.to_vec()).unwrap()
    }

    #[test]
    fn threshold_margin_and_satisfaction() {
        let above = Threshold::above(10.0);
        assert!(above.satisfied(12.0));
        assert!(!above.satisfied(8.0));
        assert!((above.margin(12.0) - 2.0).abs() < 1e-12);

        let below = Threshold::below(10.0);
        assert!(below.satisfied(8.0));
        assert!(!below.satisfied(12.0));
        assert!((below.margin(8.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn log_objective_rejects_constraint_violations() {
        let objective = Objective::log(4.0);
        let r = region(&[0.1, 0.1]);
        let threshold = Threshold::above(100.0);
        assert!(objective.evaluate(50.0, &r, &threshold).is_infinite());
        assert!(objective.evaluate(150.0, &r, &threshold).is_finite());
        assert!(objective.rejects_invalid());
    }

    #[test]
    fn ratio_objective_is_defined_for_violations() {
        let objective = Objective::ratio(4.0);
        let r = region(&[0.1, 0.1]);
        let threshold = Threshold::above(100.0);
        let violating = objective.evaluate(50.0, &r, &threshold);
        assert!(violating.is_finite() && violating < 0.0);
        assert!(!objective.rejects_invalid());
    }

    #[test]
    fn log_objective_matches_the_formula() {
        let objective = LogObjective { c: 2.0 };
        let r = region(&[0.1, 0.2]);
        let threshold = Threshold::above(10.0);
        let value = objective.evaluate(15.0, &r, &threshold);
        let expected = (5.0_f64).ln() - 2.0 * (0.1_f64.ln() + 0.2_f64.ln());
        assert!((value - expected).abs() < 1e-12);
    }

    #[test]
    fn ratio_objective_matches_the_formula() {
        let objective = RatioObjective { c: 1.0 };
        let r = region(&[0.1, 0.2]);
        let threshold = Threshold::below(10.0);
        let value = objective.evaluate(4.0, &r, &threshold);
        let expected = 6.0 / (0.1 * 0.2);
        assert!((value - expected).abs() < 1e-9);
    }

    #[test]
    fn larger_c_penalizes_large_regions_more() {
        let small = region(&[0.05]);
        let large = region(&[0.4]);
        let threshold = Threshold::above(1.0);
        for c in [1.0, 2.0, 4.0] {
            let objective = Objective::log(c);
            let gap = objective.evaluate(2.0, &small, &threshold)
                - objective.evaluate(2.0, &large, &threshold);
            // The small region is always preferred, increasingly so as c grows.
            assert!(gap > 0.0);
            if c > 1.0 {
                let previous = Objective::log(c - 1.0);
                let previous_gap = previous.evaluate(2.0, &small, &threshold)
                    - previous.evaluate(2.0, &large, &threshold);
                assert!(gap > previous_gap);
            }
        }
    }

    #[test]
    fn objective_helpers() {
        assert_eq!(Objective::paper_default().c(), 4.0);
        assert_eq!(Objective::ratio(3.0).c(), 3.0);
        let nan_margin =
            Objective::log(1.0).evaluate(f64::NAN, &region(&[0.1]), &Threshold::above(1.0));
        assert!(nan_margin.is_infinite() && nan_margin < 0.0);
    }
}
