//! Accuracy evaluation of mined regions.
//!
//! Two complementary checks are used by the paper:
//!
//! * against synthetic **ground truth** — the Intersection-over-Union protocol behind
//!   Figures 3 and 4 ([`match_regions`]), and
//! * against the **true function** — the fraction of proposed regions whose *actual*
//!   statistic satisfies the analyst constraint (the "100 % of the proposed regions comply
//!   with `f(x, l) > y_R`" statement of the Crimes experiment, Fig. 5)
//!   ([`validity_fraction`]).

use serde::{Deserialize, Serialize};
use surf_data::dataset::Dataset;
use surf_data::error::DataError;
use surf_data::iou::iou;
use surf_data::region::Region;
use surf_data::statistic::Statistic;

use crate::objective::Threshold;

/// The result of matching candidate regions against ground-truth regions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionMatch {
    /// For every ground-truth region: the best IoU achieved by any candidate.
    pub per_ground_truth_iou: Vec<f64>,
    /// For every ground-truth region: the index of the best-matching candidate (None when no
    /// candidate overlaps it).
    pub best_candidate: Vec<Option<usize>>,
    /// Mean of the per-ground-truth best IoUs (the quantity plotted in Fig. 3).
    pub mean_iou: f64,
}

/// Matches candidates to ground truth: every ground-truth region is credited with the best
/// IoU any candidate achieves against it, and the mean of those scores is reported.
pub fn match_regions(candidates: &[Region], ground_truth: &[Region]) -> RegionMatch {
    let mut per_ground_truth_iou = Vec::with_capacity(ground_truth.len());
    let mut best_candidate = Vec::with_capacity(ground_truth.len());
    for gt in ground_truth {
        let mut best = 0.0;
        let mut best_idx = None;
        for (i, candidate) in candidates.iter().enumerate() {
            let score = iou(candidate, gt);
            if score > best {
                best = score;
                best_idx = Some(i);
            }
        }
        per_ground_truth_iou.push(best);
        best_candidate.push(best_idx);
    }
    let mean_iou = if per_ground_truth_iou.is_empty() {
        0.0
    } else {
        per_ground_truth_iou.iter().sum::<f64>() / per_ground_truth_iou.len() as f64
    };
    RegionMatch {
        per_ground_truth_iou,
        best_candidate,
        mean_iou,
    }
}

/// Fraction of the proposed regions whose *true* statistic (evaluated over the data) satisfies
/// the threshold. Returns 0 for an empty proposal set.
pub fn validity_fraction(
    dataset: &Dataset,
    statistic: Statistic,
    threshold: &Threshold,
    regions: &[Region],
    empty_value: f64,
) -> Result<f64, DataError> {
    validity_fraction_threaded(dataset, statistic, threshold, regions, empty_value, 1)
}

/// Like [`validity_fraction`], fanning the (data-touching) per-region statistic evaluations
/// out over up to `threads` OS threads (`0` = automatic). Each evaluation is independent and
/// served by the dataset's spatial index, so the fraction is identical to the sequential one.
pub fn validity_fraction_threaded(
    dataset: &Dataset,
    statistic: Statistic,
    threshold: &Threshold,
    regions: &[Region],
    empty_value: f64,
    threads: usize,
) -> Result<f64, DataError> {
    if regions.is_empty() {
        return Ok(0.0);
    }
    // Build the dataset's index before fanning out, so worker threads share the cached
    // handle instead of racing to construct it.
    dataset.default_region_index();
    let threads = surf_ml::parallel::resolve_threads(threads);
    let values = surf_ml::parallel::parallel_map(regions.iter().collect(), threads, |region| {
        statistic.evaluate_or(dataset, region, empty_value)
    });
    let mut valid = 0usize;
    for value in values {
        if threshold.satisfied(value?) {
            valid += 1;
        }
    }
    Ok(valid as f64 / regions.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use surf_data::synthetic::{SyntheticDataset, SyntheticSpec};

    fn region(center: &[f64], half: &[f64]) -> Region {
        Region::new(center.to_vec(), half.to_vec()).unwrap()
    }

    #[test]
    fn perfect_candidates_score_one() {
        let gt = vec![
            region(&[0.2, 0.2], &[0.1, 0.1]),
            region(&[0.8, 0.8], &[0.1, 0.1]),
        ];
        let result = match_regions(&gt, &gt);
        assert!((result.mean_iou - 1.0).abs() < 1e-12);
        assert_eq!(result.best_candidate, vec![Some(0), Some(1)]);
    }

    #[test]
    fn unmatched_ground_truth_scores_zero() {
        let gt = vec![region(&[0.2], &[0.1]), region(&[0.8], &[0.1])];
        let candidates = vec![region(&[0.2], &[0.1])];
        let result = match_regions(&candidates, &gt);
        assert!((result.per_ground_truth_iou[0] - 1.0).abs() < 1e-12);
        assert_eq!(result.per_ground_truth_iou[1], 0.0);
        assert_eq!(result.best_candidate[1], None);
        assert!((result.mean_iou - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        let result = match_regions(&[], &[region(&[0.5], &[0.1])]);
        assert_eq!(result.mean_iou, 0.0);
        let result = match_regions(&[region(&[0.5], &[0.1])], &[]);
        assert_eq!(result.mean_iou, 0.0);
        assert!(result.per_ground_truth_iou.is_empty());
    }

    #[test]
    fn validity_fraction_against_the_true_function() {
        let synthetic = SyntheticDataset::generate(
            &SyntheticSpec::density(2, 1).with_points(3_000).with_seed(2),
        );
        let gt = synthetic.ground_truth[0].clone();
        let empty_corner = region(&[0.02, 0.02], &[0.01, 0.01]);
        let threshold = Threshold::above(500.0);
        let fraction = validity_fraction(
            &synthetic.dataset,
            Statistic::Count,
            &threshold,
            &[gt, empty_corner],
            0.0,
        )
        .unwrap();
        assert!((fraction - 0.5).abs() < 1e-12);
        let empty =
            validity_fraction(&synthetic.dataset, Statistic::Count, &threshold, &[], 0.0).unwrap();
        assert_eq!(empty, 0.0);
    }

    #[test]
    fn validity_fraction_propagates_data_errors() {
        let synthetic =
            SyntheticDataset::generate(&SyntheticSpec::density(2, 1).with_points(500).with_seed(3));
        let wrong_dims = region(&[0.5], &[0.1]);
        let result = validity_fraction(
            &synthetic.dataset,
            Statistic::Count,
            &Threshold::above(1.0),
            &[wrong_dims],
            0.0,
        );
        assert!(result.is_err());
    }
}
