//! Batch- and thread-invariance of the swarm optimizers.
//!
//! GSO and PSO evaluate a whole iteration's candidates through
//! `FitnessFunction::fitness_batch`. These tests pin down the contract that makes that a
//! pure optimization: a landscape that overrides `fitness_batch` (as SuRF's compiled
//! surrogate fitness does) must produce **identical** `GsoResult` / `PsoResult` to the same
//! landscape going through the default per-candidate path, and both must be identical for
//! every thread count.

use surf_optim::fitness::{FitnessFunction, MultiPeak, SolutionBounds};
use surf_optim::gso::{GlowwormSwarm, GsoParams};
use surf_optim::pso::{ParticleSwarm, PsoParams};

/// A landscape with a hand-written batched evaluation path (the "batching on" side).
struct BatchedPeaks(MultiPeak);

impl FitnessFunction for BatchedPeaks {
    fn bounds(&self) -> SolutionBounds {
        self.0.bounds()
    }

    fn fitness(&self, solution: &[f64]) -> f64 {
        self.0.fitness(solution)
    }

    // Deliberately processes candidates in odd-sized sub-chunks to prove chunking cannot
    // leak into results.
    fn fitness_batch(&self, solutions: &[f64], dim: usize, out: &mut [f64]) {
        for (candidates, slots) in solutions.chunks(7 * dim).zip(out.chunks_mut(7)) {
            for (candidate, slot) in candidates.chunks(dim).zip(slots.iter_mut()) {
                *slot = self.0.fitness(candidate);
            }
        }
    }
}

/// The same landscape forced through the default (scalar) `fitness_batch` path
/// (the "batching off" side).
struct ScalarPeaks(MultiPeak);

impl FitnessFunction for ScalarPeaks {
    fn bounds(&self) -> SolutionBounds {
        self.0.bounds()
    }

    fn fitness(&self, solution: &[f64]) -> f64 {
        self.0.fitness(solution)
    }
}

#[test]
fn gso_result_is_identical_with_batching_on_and_off() {
    let params = GsoParams::quick().with_seed(11).with_threads(1);
    let batched = GlowwormSwarm::new(params.clone()).run(&BatchedPeaks(MultiPeak::two_peaks()));
    let scalar = GlowwormSwarm::new(params).run(&ScalarPeaks(MultiPeak::two_peaks()));
    assert_eq!(batched.glowworms, scalar.glowworms);
    assert_eq!(batched.mean_fitness_history, scalar.mean_fitness_history);
    assert_eq!(batched.iterations_run, scalar.iterations_run);
    assert_eq!(batched.converged, scalar.converged);
    assert_eq!(batched.fitness_evaluations, scalar.fitness_evaluations);
}

#[test]
fn gso_result_is_identical_for_every_thread_count_with_batched_fitness() {
    let landscape = BatchedPeaks(MultiPeak::diagonal_peaks(3, 3));
    let runs: Vec<_> = [1usize, 2, 4, 0]
        .into_iter()
        .map(|threads| {
            GlowwormSwarm::new(GsoParams::quick().with_seed(5).with_threads(threads))
                .run(&landscape)
        })
        .collect();
    for run in &runs[1..] {
        assert_eq!(runs[0].glowworms, run.glowworms);
        assert_eq!(runs[0].mean_fitness_history, run.mean_fitness_history);
    }
}

#[test]
fn pso_result_is_identical_with_batching_on_and_off() {
    let params = PsoParams::quick().with_seed(23).with_threads(1);
    let batched = ParticleSwarm::new(params.clone()).run(&BatchedPeaks(MultiPeak::two_peaks()));
    let scalar = ParticleSwarm::new(params).run(&ScalarPeaks(MultiPeak::two_peaks()));
    assert_eq!(batched, scalar);
}

#[test]
fn pso_result_is_identical_for_every_thread_count() {
    let landscape = BatchedPeaks(MultiPeak::two_peaks());
    let runs: Vec<_> = [1usize, 3, 8, 0]
        .into_iter()
        .map(|threads| {
            ParticleSwarm::new(PsoParams::quick().with_seed(2).with_threads(threads))
                .run(&landscape)
        })
        .collect();
    for run in &runs[1..] {
        assert_eq!(&runs[0], run);
    }
}

#[test]
fn evaluate_swarm_matches_scalar_evaluation() {
    let landscape = BatchedPeaks(MultiPeak::two_peaks());
    let positions: Vec<Vec<f64>> = (0..53)
        .map(|i| vec![(i as f64) / 53.0, 1.0 - (i as f64) / 53.0])
        .collect();
    let expected: Vec<f64> = positions.iter().map(|p| landscape.fitness(p)).collect();
    for threads in [1usize, 2, 5, 16] {
        let got = surf_optim::evaluate_swarm(&landscape, &positions, threads);
        assert_eq!(got, expected, "threads={threads}");
    }
    assert!(surf_optim::evaluate_swarm(&landscape, &[], 4).is_empty());
}
