//! # surf-optim
//!
//! Optimization substrate for the SuRF reproduction:
//!
//! * [`gso`] — Glowworm Swarm Optimization (Krishnanand & Ghose), the multimodal evolutionary
//!   optimizer SuRF uses to locate *all* regions satisfying the analyst's threshold (Section
//!   III of the paper), including the KDE-guided movement rule of Eq. 8.
//! * [`pso`] — a standard global-best Particle Swarm Optimization, included as the unimodal
//!   reference the paper contrasts GSO with.
//! * [`naive`] — the discretized exhaustive baseline of Section II-A (`O((n·m)^d · N)`).
//! * [`prim`] — the PRIM bump-hunting baseline (Friedman & Fisher) used in the accuracy
//!   comparison of Section V-B.
//!
//! The swarm optimizers act on an abstract [`fitness::FitnessFunction`], so they are reusable
//! for any objective; `surf-core` wires them to the paper's surrogate-backed objective. Both
//! swarms evaluate a whole iteration's candidates through
//! [`fitness::FitnessFunction::fitness_batch`] (see [`fitness::evaluate_swarm`]), so a
//! batch-capable fitness — SuRF's compiled surrogate — amortizes its per-call cost over the
//! entire swarm; results are identical for batched and unbatched implementations and for
//! every thread count.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fitness;
pub mod gso;
pub mod naive;
pub mod prim;
pub mod pso;

pub use fitness::{evaluate_swarm, FitnessFunction};
pub use gso::{GlowwormSwarm, GsoParams, GsoResult};
pub use naive::{NaiveParams, NaiveSearch};
pub use prim::{Prim, PrimParams};
pub use pso::{ParticleSwarm, PsoParams};
