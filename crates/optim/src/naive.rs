//! The Naive discretized exhaustive baseline (Section II-A of the paper).
//!
//! The data domain is discretized into `n` candidate centers and `m` candidate side lengths
//! per dimension; every combination — `(n·m)^d` regions — is evaluated with the true, data
//! touching statistic, which is exactly the exponential blow-up the paper measures in Table I
//! (with the same `n = m = 6` the number of evaluations reaches 6·10^7 at `d = 5`). The
//! search accepts a wall-clock budget and reports what fraction of the candidate space it
//! managed to examine, mirroring the "- (22 %)" timeout entries of Table I.

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use surf_data::region::Region;

/// Parameters of the exhaustive search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NaiveParams {
    /// Number of candidate centers per dimension (`n`, paper: 6).
    pub centers_per_dim: usize,
    /// Number of candidate half side lengths per dimension (`m`, paper: 6).
    pub lengths_per_dim: usize,
    /// Smallest candidate half side length, as a fraction of the domain side.
    pub min_length_fraction: f64,
    /// Largest candidate half side length, as a fraction of the domain side.
    pub max_length_fraction: f64,
    /// Wall-clock budget; `None` runs to completion (the paper uses 3,000 s).
    pub time_limit: Option<Duration>,
    /// Keep at most this many best-scoring regions (bounds memory on huge sweeps).
    pub keep_best: usize,
}

impl Default for NaiveParams {
    fn default() -> Self {
        Self {
            centers_per_dim: 6,
            lengths_per_dim: 6,
            min_length_fraction: 0.02,
            max_length_fraction: 0.25,
            time_limit: None,
            keep_best: 256,
        }
    }
}

impl NaiveParams {
    /// The paper's Table-I configuration (`n = m = 6`, 3,000 s budget).
    pub fn paper_default() -> Self {
        Self {
            time_limit: Some(Duration::from_secs(3_000)),
            ..Self::default()
        }
    }

    /// Builder-style override of the grid resolution.
    pub fn with_grid(mut self, centers: usize, lengths: usize) -> Self {
        self.centers_per_dim = centers;
        self.lengths_per_dim = lengths;
        self
    }

    /// Builder-style override of the time limit.
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Builder-style override of the number of retained regions.
    pub fn with_keep_best(mut self, keep: usize) -> Self {
        self.keep_best = keep.max(1);
        self
    }

    /// Total number of candidate regions for a `d`-dimensional domain: `(n·m)^d`.
    pub fn total_candidates(&self, dimensions: usize) -> u128 {
        let per_dim = (self.centers_per_dim * self.lengths_per_dim) as u128;
        per_dim.pow(dimensions as u32)
    }
}

/// One scored candidate region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoredRegion {
    /// The candidate region.
    pub region: Region,
    /// The score assigned by the caller's objective (higher is better).
    pub score: f64,
}

/// The outcome of an exhaustive sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NaiveResult {
    /// The best-scoring valid regions found, sorted by descending score.
    pub regions: Vec<ScoredRegion>,
    /// Number of candidates actually evaluated.
    pub examined: u128,
    /// Total number of candidates in the discretized space.
    pub total_candidates: u128,
    /// Whether the time limit expired before the sweep finished.
    pub timed_out: bool,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

impl NaiveResult {
    /// Fraction of the candidate space that was examined (1.0 for a completed sweep) — the
    /// percentage the paper reports next to timed-out Table I entries.
    pub fn coverage(&self) -> f64 {
        if self.total_candidates == 0 {
            return 1.0;
        }
        self.examined as f64 / self.total_candidates as f64
    }

    /// The `k` best regions.
    pub fn top_k(&self, k: usize) -> &[ScoredRegion] {
        &self.regions[..k.min(self.regions.len())]
    }
}

/// The exhaustive baseline search.
pub struct NaiveSearch {
    params: NaiveParams,
}

impl NaiveSearch {
    /// Creates a search with the given parameters.
    pub fn new(params: NaiveParams) -> Self {
        Self { params }
    }

    /// Sweeps the discretized region space over `domain`, scoring every candidate with
    /// `scorer` (higher is better; non-finite scores mark invalid regions and are dropped).
    ///
    /// The scorer dominates the sweep cost. When it wraps the true, data-touching statistic
    /// (as the comparison harness does), route it through an indexed dataset
    /// (`surf_data::index`) — the per-candidate cost then drops from a full `O(N·d)` scan to
    /// a sublinear index probe, which is what lets complete sweeps finish within Table I
    /// time budgets.
    pub fn search<F>(&self, domain: &Region, scorer: F) -> NaiveResult
    where
        F: FnMut(&Region) -> f64,
    {
        let mut scorer = scorer;
        let params = &self.params;
        let d = domain.dimensions();
        let start = Instant::now();

        // Candidate centers and half lengths per dimension.
        let centers: Vec<Vec<f64>> = (0..d)
            .map(|dim| {
                let lo = domain.lower_in(dim);
                let hi = domain.upper_in(dim);
                linspace(lo, hi, params.centers_per_dim)
            })
            .collect();
        let lengths: Vec<Vec<f64>> = (0..d)
            .map(|dim| {
                let side = domain.upper_in(dim) - domain.lower_in(dim);
                linspace(
                    params.min_length_fraction * side,
                    params.max_length_fraction * side,
                    params.lengths_per_dim,
                )
            })
            .collect();

        let per_dim = params.centers_per_dim * params.lengths_per_dim;
        let total_candidates = params.total_candidates(d);

        // Mixed-radix counter over (center index, length index) per dimension.
        let mut counter = vec![0usize; d];
        let mut best: Vec<ScoredRegion> = Vec::with_capacity(params.keep_best + 1);
        let mut examined: u128 = 0;
        let mut timed_out = false;
        let mut done = false;

        while !done {
            // Time check every 1,024 evaluations keeps the overhead negligible.
            if let Some(limit) = params.time_limit {
                if examined % 1_024 == 0 && start.elapsed() > limit {
                    timed_out = true;
                    break;
                }
            }

            let mut center = Vec::with_capacity(d);
            let mut half = Vec::with_capacity(d);
            for (dim, &code) in counter.iter().enumerate() {
                let center_idx = code / params.lengths_per_dim;
                let length_idx = code % params.lengths_per_dim;
                center.push(centers[dim][center_idx]);
                half.push(lengths[dim][length_idx].max(f64::MIN_POSITIVE));
            }
            if let Ok(region) = Region::new(center, half) {
                let score = scorer(&region);
                examined += 1;
                if score.is_finite() {
                    insert_best(&mut best, ScoredRegion { region, score }, params.keep_best);
                }
            } else {
                examined += 1;
            }

            // Advance the counter.
            done = true;
            for digit in counter.iter_mut() {
                *digit += 1;
                if *digit < per_dim {
                    done = false;
                    break;
                }
                *digit = 0;
            }
        }

        NaiveResult {
            regions: best,
            examined,
            total_candidates,
            timed_out,
            elapsed: start.elapsed(),
        }
    }
}

/// Inserts a scored region keeping the list sorted by descending score and capped at `cap`.
fn insert_best(best: &mut Vec<ScoredRegion>, candidate: ScoredRegion, cap: usize) {
    let position = best
        .iter()
        .position(|r| candidate.score > r.score)
        .unwrap_or(best.len());
    best.insert(position, candidate);
    if best.len() > cap {
        best.pop();
    }
}

/// `count` evenly spaced values from `start` to `end` inclusive.
fn linspace(start: f64, end: f64, count: usize) -> Vec<f64> {
    if count <= 1 {
        return vec![0.5 * (start + end)];
    }
    (0..count)
        .map(|i| start + (end - start) * i as f64 / (count - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_candidates_matches_the_paper_formula() {
        let params = NaiveParams::default();
        assert_eq!(params.total_candidates(1), 36);
        assert_eq!(params.total_candidates(2), 1_296);
        assert_eq!(params.total_candidates(5), 36u128.pow(5));
    }

    #[test]
    fn full_sweep_examines_every_candidate() {
        let params = NaiveParams::default().with_grid(4, 3);
        let domain = Region::unit_cube(2);
        let result = NaiveSearch::new(params.clone()).search(&domain, |r| -r.volume());
        assert_eq!(result.examined, params.total_candidates(2));
        assert!(!result.timed_out);
        assert!((result.coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn best_region_scores_first_and_cap_is_respected() {
        let params = NaiveParams::default().with_grid(5, 4).with_keep_best(10);
        let domain = Region::unit_cube(2);
        // Score favouring regions centred near (0.75, 0.75) and small.
        let result = NaiveSearch::new(params).search(&domain, |r| {
            let c = r.center();
            -(c[0] - 0.75).powi(2) - (c[1] - 0.75).powi(2) - r.volume()
        });
        assert!(result.regions.len() <= 10);
        for window in result.regions.windows(2) {
            assert!(window[0].score >= window[1].score);
        }
        let best_center = result.regions[0].region.center();
        assert!((best_center[0] - 0.75).abs() < 0.2);
    }

    #[test]
    fn non_finite_scores_are_dropped() {
        let params = NaiveParams::default().with_grid(3, 3);
        let domain = Region::unit_cube(1);
        let result = NaiveSearch::new(params).search(&domain, |r| {
            if r.center()[0] < 0.5 {
                f64::NEG_INFINITY
            } else {
                1.0
            }
        });
        assert!(result
            .regions
            .iter()
            .all(|r| r.region.center()[0] >= 0.5 && r.score.is_finite()));
    }

    #[test]
    fn time_limit_interrupts_the_sweep() {
        let params = NaiveParams::default()
            .with_grid(6, 6)
            .with_time_limit(Duration::from_millis(1));
        let domain = Region::unit_cube(4);
        // An artificially slow scorer so that the 1 ms budget cannot cover 36^4 candidates.
        let result = NaiveSearch::new(params).search(&domain, |r| {
            std::hint::black_box(r.volume());
            let mut acc = 0.0;
            for i in 0..50 {
                acc += (i as f64).sqrt();
            }
            acc
        });
        assert!(result.timed_out);
        assert!(result.coverage() < 1.0);
        assert!(result.examined > 0);
    }

    #[test]
    fn linspace_endpoints() {
        let v = linspace(0.0, 1.0, 5);
        assert_eq!(v.len(), 5);
        assert!((v[0] - 0.0).abs() < 1e-12);
        assert!((v[4] - 1.0).abs() < 1e-12);
        assert_eq!(linspace(0.0, 2.0, 1), vec![1.0]);
    }
}
