//! Global-best Particle Swarm Optimization (Kennedy & Eberhart).
//!
//! The paper motivates GSO as "a multimodal variant of the well-known Particle Swarm
//! Optimization" — PSO converges to a *single* global optimum, so it cannot return the
//! multiple regions SuRF needs, but it is a useful unimodal reference and is exercised by the
//! ablation benches.
//!
//! The update rule is the *synchronous* variant: every particle moves against the previous
//! iteration's personal/global bests, then the whole swarm is evaluated in one batch through
//! [`FitnessFunction::fitness_batch`], then all bests are updated. This is what lets a
//! batch-capable fitness (SuRF's compiled surrogate) see the entire swarm per iteration, and
//! it makes the trajectory identical for every thread count and for batched and unbatched
//! fitness implementations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use surf_ml::parallel::resolve_threads;

use crate::fitness::{evaluate_swarm, FitnessFunction};

/// Hyper-parameters of the particle swarm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PsoParams {
    /// Number of particles.
    pub particles: usize,
    /// Number of iterations.
    pub iterations: usize,
    /// Inertia weight `w`.
    pub inertia: f64,
    /// Cognitive acceleration `c1` (pull toward the particle's personal best).
    pub cognitive: f64,
    /// Social acceleration `c2` (pull toward the global best).
    pub social: f64,
    /// Maximum velocity as a fraction of each variable's extent.
    pub max_velocity_fraction: f64,
    /// OS threads used to evaluate particle fitness each iteration: `0` = automatic,
    /// `1` = sequential, `n` = exactly `n`. The trajectory is identical for every count.
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PsoParams {
    fn default() -> Self {
        Self {
            particles: 60,
            iterations: 100,
            inertia: 0.72,
            cognitive: 1.49,
            social: 1.49,
            max_velocity_fraction: 0.2,
            threads: 0,
            seed: 0,
        }
    }
}

impl PsoParams {
    /// A small, fast configuration for tests.
    pub fn quick() -> Self {
        Self {
            particles: 30,
            iterations: 60,
            ..Self::default()
        }
    }

    /// Builder-style override of the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style override of the iteration budget.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Builder-style override of the fitness-evaluation thread count (`0` = automatic).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// The outcome of a PSO run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PsoResult {
    /// Best position found by the swarm.
    pub best_position: Vec<f64>,
    /// Fitness at the best position.
    pub best_fitness: f64,
    /// Best fitness after each iteration.
    pub best_fitness_history: Vec<f64>,
    /// Number of fitness evaluations performed.
    pub fitness_evaluations: usize,
}

/// The particle swarm optimizer.
pub struct ParticleSwarm {
    params: PsoParams,
}

impl ParticleSwarm {
    /// Creates an optimizer with the given parameters.
    pub fn new(params: PsoParams) -> Self {
        Self { params }
    }

    /// Runs PSO and returns the best solution found.
    pub fn run<F: FitnessFunction + ?Sized>(&self, fitness: &F) -> PsoResult {
        let params = &self.params;
        let bounds = fitness.bounds();
        let dims = bounds.dimensions();
        let extents = bounds.extents();
        let threads = resolve_threads(params.threads);
        let mut rng = StdRng::seed_from_u64(params.seed);

        let mut positions: Vec<Vec<f64>> = (0..params.particles)
            .map(|_| {
                (0..dims)
                    .map(|d| rng.random_range(bounds.lower[d]..=bounds.upper[d]))
                    .collect()
            })
            .collect();
        let mut velocities: Vec<Vec<f64>> = (0..params.particles)
            .map(|_| {
                (0..dims)
                    .map(|d| {
                        let v_max = params.max_velocity_fraction * extents[d];
                        rng.random_range(-v_max..=v_max)
                    })
                    .collect()
            })
            .collect();

        let mut personal_best = positions.clone();
        let mut personal_best_fitness: Vec<f64> = evaluate_swarm(fitness, &positions, threads)
            .into_iter()
            .map(finite_or_neg_inf)
            .collect();
        let mut evaluations = params.particles;

        let (global_best_index, _) = personal_best_fitness.iter().enumerate().fold(
            (0, f64::NEG_INFINITY),
            |acc, (i, &f)| if f > acc.1 { (i, f) } else { acc },
        );
        let mut global_best = personal_best[global_best_index].clone();
        let mut global_best_fitness = personal_best_fitness[global_best_index];
        let mut history = Vec::with_capacity(params.iterations);

        for _ in 0..params.iterations {
            // Movement phase: every particle moves against the *previous* iteration's bests
            // (synchronous PSO), so the whole swarm can be evaluated in one batch below.
            for i in 0..params.particles {
                for d in 0..dims {
                    let r1: f64 = rng.random();
                    let r2: f64 = rng.random();
                    let v_max = params.max_velocity_fraction * extents[d];
                    let mut velocity = params.inertia * velocities[i][d]
                        + params.cognitive * r1 * (personal_best[i][d] - positions[i][d])
                        + params.social * r2 * (global_best[d] - positions[i][d]);
                    velocity = velocity.clamp(-v_max, v_max);
                    velocities[i][d] = velocity;
                    positions[i][d] += velocity;
                }
                bounds.clamp(&mut positions[i]);
            }

            // Evaluation phase: the whole swarm in one `fitness_batch` pass.
            let values = evaluate_swarm(fitness, &positions, threads);
            evaluations += params.particles;

            // Update phase, in particle order.
            for (i, value) in values.into_iter().enumerate() {
                let value = finite_or_neg_inf(value);
                if value > personal_best_fitness[i] {
                    personal_best_fitness[i] = value;
                    personal_best[i] = positions[i].clone();
                    if value > global_best_fitness {
                        global_best_fitness = value;
                        global_best = positions[i].clone();
                    }
                }
            }
            history.push(global_best_fitness);
        }

        PsoResult {
            best_position: global_best,
            best_fitness: global_best_fitness,
            best_fitness_history: history,
            fitness_evaluations: evaluations,
        }
    }
}

fn finite_or_neg_inf(value: f64) -> f64 {
    if value.is_finite() {
        value
    } else {
        f64::NEG_INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fitness::{MultiPeak, SolutionBounds};

    /// A simple unimodal bowl with maximum at (0.6, 0.4).
    struct Bowl;
    impl FitnessFunction for Bowl {
        fn bounds(&self) -> SolutionBounds {
            SolutionBounds::unit(2)
        }
        fn fitness(&self, s: &[f64]) -> f64 {
            -((s[0] - 0.6).powi(2) + (s[1] - 0.4).powi(2))
        }
    }

    #[test]
    fn pso_finds_the_unimodal_optimum() {
        let result = ParticleSwarm::new(PsoParams::quick().with_seed(1)).run(&Bowl);
        assert!((result.best_position[0] - 0.6).abs() < 0.05);
        assert!((result.best_position[1] - 0.4).abs() < 0.05);
        assert!(result.best_fitness > -0.01);
    }

    #[test]
    fn best_fitness_history_is_monotone() {
        let result = ParticleSwarm::new(PsoParams::quick().with_seed(2)).run(&Bowl);
        for window in result.best_fitness_history.windows(2) {
            assert!(window[1] >= window[0]);
        }
        assert!(result.fitness_evaluations > 0);
    }

    #[test]
    fn pso_converges_to_a_single_peak_of_a_multimodal_landscape() {
        // This is exactly why the paper needs GSO instead: PSO collapses onto one optimum.
        let landscape = MultiPeak::two_peaks();
        let result = ParticleSwarm::new(PsoParams::default().with_seed(3)).run(&landscape);
        let d1 = ((result.best_position[0] - 0.25).powi(2)
            + (result.best_position[1] - 0.25).powi(2))
        .sqrt();
        let d2 = ((result.best_position[0] - 0.75).powi(2)
            + (result.best_position[1] - 0.75).powi(2))
        .sqrt();
        assert!(d1.min(d2) < 0.1, "did not reach either peak");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = ParticleSwarm::new(PsoParams::quick().with_seed(9)).run(&Bowl);
        let b = ParticleSwarm::new(PsoParams::quick().with_seed(9)).run(&Bowl);
        assert_eq!(a.best_position, b.best_position);
    }
}
