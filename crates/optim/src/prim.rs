//! PRIM — the Patient Rule Induction Method of Friedman & Fisher ("bump hunting in
//! high-dimensional data", 1999), the strongest baseline in the paper's accuracy comparison.
//!
//! PRIM greedily *peels* a small fraction `α` of the points off one face of the current box,
//! choosing at each step the peel that maximizes the mean response of the points that remain,
//! and stops when the box support would fall below the user threshold `β_0`. A subsequent
//! *pasting* phase re-expands faces while the mean keeps improving. Multiple boxes are found
//! with the covering strategy: the points of a found box are removed and the procedure is
//! repeated.
//!
//! As the paper observes (Section V-B), PRIM maximizes the mean of a response attribute and
//! neither takes the box volume into account nor supports a density response directly — which
//! is why it shines on the aggregate statistic with a single region and struggles on the
//! density statistic. This implementation reproduces that behaviour.

use serde::{Deserialize, Serialize};
use surf_data::region::Region;

/// Hyper-parameters of PRIM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrimParams {
    /// Fraction of the current box's points peeled per step (`α`, typically 0.05).
    pub peel_alpha: f64,
    /// Fraction of points considered when re-expanding a face during pasting.
    pub paste_alpha: f64,
    /// Minimum support `β_0` as a fraction of the full dataset (paper: 0.01).
    pub min_support: f64,
    /// Maximum number of boxes to return (covering iterations).
    pub max_boxes: usize,
    /// Optional response threshold: covering stops once a box's mean response falls below it.
    pub response_threshold: Option<f64>,
}

impl Default for PrimParams {
    fn default() -> Self {
        Self {
            peel_alpha: 0.05,
            paste_alpha: 0.05,
            min_support: 0.01,
            max_boxes: 4,
            response_threshold: None,
        }
    }
}

impl PrimParams {
    /// The configuration used in the paper's experiments: minimum support 0.01 and, for
    /// aggregate statistics, a response threshold of 2.
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// Builder-style override of the minimum support.
    pub fn with_min_support(mut self, min_support: f64) -> Self {
        self.min_support = min_support;
        self
    }

    /// Builder-style override of the peeling fraction.
    pub fn with_peel_alpha(mut self, alpha: f64) -> Self {
        self.peel_alpha = alpha;
        self
    }

    /// Builder-style override of the maximum number of boxes.
    pub fn with_max_boxes(mut self, max_boxes: usize) -> Self {
        self.max_boxes = max_boxes.max(1);
        self
    }

    /// Builder-style override of the response threshold.
    pub fn with_response_threshold(mut self, threshold: f64) -> Self {
        self.response_threshold = Some(threshold);
        self
    }
}

/// One box found by PRIM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrimBox {
    /// The box as a hyper-rectangular region.
    pub region: Region,
    /// Mean response of the points inside the box.
    pub mean_response: f64,
    /// Number of points inside the box (its support).
    pub support: usize,
    /// Support as a fraction of the full dataset.
    pub support_fraction: f64,
}

/// The PRIM bump hunter.
pub struct Prim {
    params: PrimParams,
}

impl Prim {
    /// Creates a PRIM instance with the given parameters.
    pub fn new(params: PrimParams) -> Self {
        Self { params }
    }

    /// Finds up to `max_boxes` boxes maximizing the mean of `response` over `points`
    /// (row-major feature matrix). Returns an empty vector when the inputs are degenerate.
    pub fn fit(&self, points: &[Vec<f64>], response: &[f64]) -> Vec<PrimBox> {
        if points.is_empty() || points.len() != response.len() || points[0].is_empty() {
            return Vec::new();
        }
        let total = points.len();
        let min_support_points = ((total as f64 * self.params.min_support).ceil() as usize).max(2);

        let mut remaining: Vec<usize> = (0..total).collect();
        let mut boxes = Vec::new();
        for _ in 0..self.params.max_boxes {
            if remaining.len() < min_support_points {
                break;
            }
            let Some(found) =
                self.find_one_box(points, response, &remaining, min_support_points, total)
            else {
                break;
            };
            if let Some(threshold) = self.params.response_threshold {
                if found.mean_response < threshold {
                    break;
                }
            }
            // Covering: drop the points the box captured before looking for the next box.
            let bounds = found.region.clone();
            remaining.retain(|&i| !bounds.contains(&points[i]));
            boxes.push(found);
        }
        boxes
    }

    /// Peels and pastes one box over the points indexed by `candidates`.
    // The loop variable doubles as the reported peeling dimension.
    #[allow(clippy::needless_range_loop)]
    fn find_one_box(
        &self,
        points: &[Vec<f64>],
        response: &[f64],
        candidates: &[usize],
        min_support_points: usize,
        total: usize,
    ) -> Option<PrimBox> {
        let d = points[0].len();
        let mut inside: Vec<usize> = candidates.to_vec();
        if inside.len() < min_support_points {
            return None;
        }
        // Start with the bounding box of the candidate points.
        let mut lower = vec![f64::INFINITY; d];
        let mut upper = vec![f64::NEG_INFINITY; d];
        for &i in &inside {
            for dim in 0..d {
                lower[dim] = lower[dim].min(points[i][dim]);
                upper[dim] = upper[dim].max(points[i][dim]);
            }
        }

        // Peeling: repeatedly remove the α-fraction face whose removal yields the highest mean
        // of the remaining points, until the support floor is reached. Peels are applied even
        // when they do not improve the mean immediately, as in Friedman & Fisher's original
        // procedure; the whole peeling trajectory is recorded and a box is selected from it
        // afterwards (largest support within 5 % of the best mean), which counteracts the
        // well-known over-shrinking of pure greedy peeling.
        let mut trajectory: Vec<(Vec<f64>, Vec<f64>, usize, f64)> = vec![(
            lower.clone(),
            upper.clone(),
            inside.len(),
            mean_of(response, &inside),
        )];
        loop {
            if inside.len() <= min_support_points {
                break;
            }
            let max_peel = inside.len() - min_support_points;
            let peel_count =
                ((inside.len() as f64 * self.params.peel_alpha).ceil() as usize).clamp(1, max_peel);

            // Evaluate peeling the lower or upper face of every dimension.
            let mut best: Option<(usize, bool, f64, f64)> = None; // (dim, peel_lower, new_bound, new_mean)
            for dim in 0..d {
                let mut values: Vec<f64> = inside.iter().map(|&i| points[i][dim]).collect();
                values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                // Peel from the lower face: new lower bound just above the alpha-quantile.
                let low_bound = values[peel_count.min(values.len() - 1)];
                let keep_low: Vec<usize> = inside
                    .iter()
                    .copied()
                    .filter(|&i| points[i][dim] >= low_bound)
                    .collect();
                if keep_low.len() >= min_support_points && keep_low.len() < inside.len() {
                    let m = mean_of(response, &keep_low);
                    if best.map(|b| m > b.3).unwrap_or(true) {
                        best = Some((dim, true, low_bound, m));
                    }
                }
                // Peel from the upper face.
                let high_bound = values[values.len() - 1 - peel_count.min(values.len() - 1)];
                let keep_high: Vec<usize> = inside
                    .iter()
                    .copied()
                    .filter(|&i| points[i][dim] <= high_bound)
                    .collect();
                if keep_high.len() >= min_support_points && keep_high.len() < inside.len() {
                    let m = mean_of(response, &keep_high);
                    if best.map(|b| m > b.3).unwrap_or(true) {
                        best = Some((dim, false, high_bound, m));
                    }
                }
            }

            match best {
                Some((dim, peel_lower, bound, _new_mean)) => {
                    if peel_lower {
                        lower[dim] = bound;
                        inside.retain(|&i| points[i][dim] >= bound);
                    } else {
                        upper[dim] = bound;
                        inside.retain(|&i| points[i][dim] <= bound);
                    }
                    trajectory.push((
                        lower.clone(),
                        upper.clone(),
                        inside.len(),
                        mean_of(response, &inside),
                    ));
                }
                None => break,
            }
        }
        // Box selection from the trajectory: among boxes whose mean is within 5 % of the best
        // mean observed, prefer the one with the largest support.
        let best_mean = trajectory
            .iter()
            .map(|t| t.3)
            .fold(f64::NEG_INFINITY, f64::max);
        let tolerance = 0.05 * best_mean.abs().max(f64::MIN_POSITIVE);
        let chosen = trajectory
            .iter()
            .filter(|t| t.3 >= best_mean - tolerance)
            .max_by_key(|t| t.2)
            .expect("trajectory is never empty");
        lower = chosen.0.clone();
        upper = chosen.1.clone();
        inside = candidates
            .iter()
            .copied()
            .filter(|&i| (0..d).all(|k| points[i][k] >= lower[k] && points[i][k] <= upper[k]))
            .collect();

        // Pasting: try to re-expand each face slightly while the mean improves.
        let paste_step = |values: &mut Vec<f64>| {
            values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        };
        let mut improved = true;
        while improved {
            improved = false;
            let current_mean = mean_of(response, &inside);
            for dim in 0..d {
                // Candidate points just outside the lower face.
                let mut below: Vec<f64> = candidates
                    .iter()
                    .filter(|&&i| {
                        points[i][dim] < lower[dim]
                            && (0..d).all(|k| {
                                k == dim || (points[i][k] >= lower[k] && points[i][k] <= upper[k])
                            })
                    })
                    .map(|&i| points[i][dim])
                    .collect();
                if !below.is_empty() {
                    paste_step(&mut below);
                    let take = ((inside.len() as f64 * self.params.paste_alpha).ceil() as usize)
                        .clamp(1, below.len());
                    let new_bound = below[below.len() - take];
                    let expanded: Vec<usize> = candidates
                        .iter()
                        .copied()
                        .filter(|&i| {
                            (0..d).all(|k| {
                                let lo = if k == dim { new_bound } else { lower[k] };
                                points[i][k] >= lo && points[i][k] <= upper[k]
                            })
                        })
                        .collect();
                    if mean_of(response, &expanded) > current_mean {
                        lower[dim] = new_bound;
                        inside = expanded;
                        improved = true;
                        continue;
                    }
                }
                // Candidate points just outside the upper face.
                let mut above: Vec<f64> = candidates
                    .iter()
                    .filter(|&&i| {
                        points[i][dim] > upper[dim]
                            && (0..d).all(|k| {
                                k == dim || (points[i][k] >= lower[k] && points[i][k] <= upper[k])
                            })
                    })
                    .map(|&i| points[i][dim])
                    .collect();
                if !above.is_empty() {
                    paste_step(&mut above);
                    let take = ((inside.len() as f64 * self.params.paste_alpha).ceil() as usize)
                        .clamp(1, above.len());
                    let new_bound = above[take - 1];
                    let expanded: Vec<usize> = candidates
                        .iter()
                        .copied()
                        .filter(|&i| {
                            (0..d).all(|k| {
                                let hi = if k == dim { new_bound } else { upper[k] };
                                points[i][k] >= lower[k] && points[i][k] <= hi
                            })
                        })
                        .collect();
                    if mean_of(response, &expanded) > current_mean {
                        upper[dim] = new_bound;
                        inside = expanded;
                        improved = true;
                    }
                }
            }
        }

        if inside.is_empty() {
            return None;
        }
        // Guard against degenerate (zero-width) boxes before building the region.
        for dim in 0..d {
            if upper[dim] - lower[dim] < 1e-9 {
                let pad = 5e-10;
                lower[dim] -= pad;
                upper[dim] += pad;
            }
        }
        let region = Region::from_bounds(&lower, &upper).ok()?;
        Some(PrimBox {
            mean_response: mean_of(response, &inside),
            support: inside.len(),
            support_fraction: inside.len() as f64 / total as f64,
            region,
        })
    }
}

fn mean_of(response: &[f64], indices: &[usize]) -> f64 {
    if indices.is_empty() {
        return f64::NEG_INFINITY;
    }
    indices.iter().map(|&i| response[i]).sum::<f64>() / indices.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Points uniform on [0,1]^2 with response high inside a target box.
    fn bump_data(
        n: usize,
        target_low: [f64; 2],
        target_high: [f64; 2],
        seed: u64,
    ) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let points: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.random::<f64>(), rng.random::<f64>()])
            .collect();
        let response: Vec<f64> = points
            .iter()
            .map(|p| {
                let inside = (0..2).all(|d| p[d] >= target_low[d] && p[d] <= target_high[d]);
                if inside {
                    3.0 + 0.3 * rng.random::<f64>()
                } else {
                    0.3 * rng.random::<f64>()
                }
            })
            .collect();
        (points, response)
    }

    #[test]
    fn prim_recovers_a_single_bump() {
        let (points, response) = bump_data(4_000, [0.3, 0.3], [0.5, 0.5], 1);
        let boxes = Prim::new(PrimParams::default().with_max_boxes(1)).fit(&points, &response);
        assert_eq!(boxes.len(), 1);
        let found = &boxes[0];
        assert!(found.mean_response > 2.0, "mean {}", found.mean_response);
        // The recovered box should overlap the target box substantially.
        let target = Region::from_bounds(&[0.3, 0.3], &[0.5, 0.5]).unwrap();
        let overlap = surf_data::iou::iou(&found.region, &target);
        assert!(overlap > 0.3, "IoU with target = {overlap}");
    }

    #[test]
    fn covering_finds_multiple_bumps() {
        let mut rng = StdRng::seed_from_u64(5);
        let points: Vec<Vec<f64>> = (0..6_000)
            .map(|_| vec![rng.random::<f64>(), rng.random::<f64>()])
            .collect();
        let in_box =
            |p: &[f64], lo: [f64; 2], hi: [f64; 2]| (0..2).all(|d| p[d] >= lo[d] && p[d] <= hi[d]);
        let response: Vec<f64> = points
            .iter()
            .map(|p| {
                if in_box(p, [0.1, 0.1], [0.3, 0.3]) || in_box(p, [0.7, 0.7], [0.9, 0.9]) {
                    4.0
                } else {
                    0.1
                }
            })
            .collect();
        let boxes = Prim::new(
            PrimParams::default()
                .with_max_boxes(3)
                .with_response_threshold(2.0),
        )
        .fit(&points, &response);
        assert!(boxes.len() >= 2, "found {} boxes", boxes.len());
        // The two found boxes cover different bumps.
        let first = boxes[0].region.center().to_vec();
        let second = boxes[1].region.center().to_vec();
        let dist: f64 = first
            .iter()
            .zip(&second)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(dist > 0.3, "boxes are too close: {dist}");
    }

    #[test]
    fn min_support_limits_the_box_size() {
        let (points, response) = bump_data(2_000, [0.4, 0.4], [0.45, 0.45], 2);
        let boxes = Prim::new(
            PrimParams::default()
                .with_min_support(0.25)
                .with_max_boxes(1),
        )
        .fit(&points, &response);
        assert_eq!(boxes.len(), 1);
        assert!(boxes[0].support_fraction >= 0.24, "support too small");
    }

    #[test]
    fn degenerate_inputs_return_no_boxes() {
        let prim = Prim::new(PrimParams::default());
        assert!(prim.fit(&[], &[]).is_empty());
        let points = vec![vec![0.1, 0.2]];
        assert!(prim.fit(&points, &[1.0, 2.0]).is_empty());
        let empty_row: Vec<Vec<f64>> = vec![vec![]];
        assert!(prim.fit(&empty_row, &[1.0]).is_empty());
    }

    #[test]
    fn response_threshold_stops_covering() {
        let (points, response) = bump_data(3_000, [0.2, 0.2], [0.4, 0.4], 3);
        let boxes = Prim::new(
            PrimParams::default()
                .with_max_boxes(4)
                .with_response_threshold(2.5),
        )
        .fit(&points, &response);
        // Only boxes over the genuine bump clear the threshold; covering stops before the
        // box budget is exhausted because the background cannot reach a mean of 2.5.
        assert!(!boxes.is_empty());
        assert!(boxes.len() < 4, "covering did not stop: {}", boxes.len());
        assert!(boxes.iter().all(|b| b.mean_response >= 2.5));
    }

    #[test]
    fn prim_struggles_when_density_is_the_signal() {
        // Uniform response of 1.0 everywhere: the mean is flat, so PRIM has no gradient to
        // follow even though the point density varies — the failure mode the paper describes.
        let mut rng = StdRng::seed_from_u64(9);
        let mut points: Vec<Vec<f64>> = (0..1_000)
            .map(|_| vec![rng.random::<f64>(), rng.random::<f64>()])
            .collect();
        for _ in 0..1_000 {
            points.push(vec![
                0.5 + 0.05 * (rng.random::<f64>() - 0.5),
                0.5 + 0.05 * (rng.random::<f64>() - 0.5),
            ]);
        }
        let response = vec![1.0; points.len()];
        let boxes = Prim::new(PrimParams::default().with_max_boxes(1)).fit(&points, &response);
        if let Some(found) = boxes.first() {
            let dense_target = Region::from_bounds(&[0.475, 0.475], &[0.525, 0.525]).unwrap();
            let overlap = surf_data::iou::iou(&found.region, &dense_target);
            assert!(overlap < 0.5, "PRIM unexpectedly found the dense region");
        }
    }
}
