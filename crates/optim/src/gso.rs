//! Glowworm Swarm Optimization (GSO) — Krishnanand & Ghose, *Swarm Intelligence* 2009.
//!
//! GSO is the multimodal optimizer at the heart of SuRF (Section III-A of the paper). Each
//! glowworm `i` carries a luciferin level `ℓ_i` updated from its fitness,
//!
//! ```text
//! ℓ_i(t) = (1 − ρ) ℓ_i(t−1) + γ 𝒥(p_i(t))          (Eq. 6)
//! ```
//!
//! and moves toward a probabilistically chosen neighbour with higher luciferin inside an
//! adaptive local-decision radius. Because interactions are purely local, the swarm splits
//! into sub-swarms that converge to *different* local optima — exactly what is needed to
//! return every region satisfying the analyst's constraint. SuRF additionally weighs the
//! neighbour-selection probability by the KDE mass of the candidate region (Eq. 8), supplied
//! here through [`FitnessFunction::density_weight`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use surf_ml::parallel::{parallel_map, resolve_threads};

use crate::fitness::{evaluate_swarm, FitnessFunction};

/// Hyper-parameters of the glowworm swarm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GsoParams {
    /// Number of glowworms `L` (the paper uses 100, or `50·d` in the sensitivity study).
    pub glowworms: usize,
    /// Maximum number of iterations `T` (the paper uses 100; convergence averages ≈63).
    pub iterations: usize,
    /// Luciferin decay `ρ` (paper: 0.4).
    pub rho: f64,
    /// Luciferin enhancement `γ` (paper: 0.6).
    pub gamma: f64,
    /// Initial luciferin `ℓ_0`.
    pub initial_luciferin: f64,
    /// Initial and maximum neighbourhood radius `r_0` = `r_s`, expressed as a fraction of the
    /// solution-space diagonal (the paper sets the absolute value 3 for its normalized space).
    pub initial_radius_fraction: f64,
    /// Rate `β` at which the decision radius adapts to the neighbour count.
    pub beta: f64,
    /// Desired number of neighbours `n_t`.
    pub desired_neighbors: usize,
    /// Step size `s`, expressed as a fraction of the solution-space diagonal.
    pub step_fraction: f64,
    /// Enable the KDE-guided neighbour selection of Eq. 8.
    pub use_density_guide: bool,
    /// Stop early when the mean absolute luciferin change over a full iteration falls below
    /// this tolerance (0 disables early convergence detection).
    pub convergence_tolerance: f64,
    /// OS threads used to evaluate glowworm fitness (and KDE density weights) each
    /// iteration: `0` = automatic (or inherited from the pipeline's thread knob),
    /// `1` = sequential, `n` = exactly `n`. Fitness evaluations are independent, so the
    /// trajectory is identical for every thread count.
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GsoParams {
    fn default() -> Self {
        Self {
            glowworms: 100,
            iterations: 100,
            rho: 0.4,
            gamma: 0.6,
            initial_luciferin: 5.0,
            initial_radius_fraction: 0.6,
            beta: 0.08,
            desired_neighbors: 5,
            step_fraction: 0.03,
            use_density_guide: true,
            convergence_tolerance: 1e-4,
            threads: 0,
            seed: 0,
        }
    }
}

impl GsoParams {
    /// The paper's Table-I configuration: `L = 100`, `T = 100`, `γ = 0.6`, `ρ = 0.4`.
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// A small, fast configuration for tests and examples.
    pub fn quick() -> Self {
        Self {
            glowworms: 40,
            iterations: 40,
            ..Self::default()
        }
    }

    /// The dimension-adaptive configuration of Section V-G: `L = 50·d` glowworms and an
    /// initial radius `r_0 = (1 − (1/2)^{1/L})^{1/d}` (fraction of the domain) adopted from
    /// Friedman et al. Eq. 2.24.
    pub fn dimension_adaptive(solution_dimensions: usize) -> Self {
        let d = solution_dimensions.max(1);
        let glowworms = 50 * d;
        let radius = (1.0 - 0.5_f64.powf(1.0 / glowworms as f64)).powf(1.0 / d as f64);
        Self {
            glowworms,
            initial_radius_fraction: radius.clamp(0.05, 1.0),
            ..Self::default()
        }
    }

    /// Builder-style override of the number of glowworms.
    pub fn with_glowworms(mut self, glowworms: usize) -> Self {
        self.glowworms = glowworms;
        self
    }

    /// Builder-style override of the iteration budget.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Builder-style override of the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style toggle of the KDE guidance (Eq. 8 vs plain Eq. 7).
    pub fn with_density_guide(mut self, enabled: bool) -> Self {
        self.use_density_guide = enabled;
        self
    }

    /// Builder-style override of the fitness-evaluation thread count (`0` = automatic).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// The converged state of one glowworm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Glowworm {
    /// Final position in the solution space.
    pub position: Vec<f64>,
    /// Final fitness at that position.
    pub fitness: f64,
    /// Final luciferin level.
    pub luciferin: f64,
}

/// The outcome of a GSO run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GsoResult {
    /// Final state of every glowworm.
    pub glowworms: Vec<Glowworm>,
    /// Mean finite fitness of the swarm after each iteration (the `E[𝒥]` convergence traces
    /// of Fig. 9).
    pub mean_fitness_history: Vec<f64>,
    /// Number of iterations actually executed.
    pub iterations_run: usize,
    /// Whether the luciferin change dropped below the convergence tolerance before the
    /// iteration budget was exhausted.
    pub converged: bool,
    /// Number of fitness evaluations performed.
    pub fitness_evaluations: usize,
}

impl GsoResult {
    /// Glowworms whose final fitness is finite (i.e. they ended on a valid candidate), sorted
    /// by descending fitness.
    pub fn valid_glowworms(&self) -> Vec<&Glowworm> {
        let mut valid: Vec<&Glowworm> = self
            .glowworms
            .iter()
            .filter(|g| g.fitness.is_finite())
            .collect();
        valid.sort_by(|a, b| {
            b.fitness
                .partial_cmp(&a.fitness)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        valid
    }

    /// Fraction of the swarm that ended on a valid (finite-fitness) candidate — the "84 % of
    /// the particles have converged to regions satisfying the constraint" measure of Fig. 1.
    pub fn valid_fraction(&self) -> f64 {
        if self.glowworms.is_empty() {
            return 0.0;
        }
        self.glowworms
            .iter()
            .filter(|g| g.fitness.is_finite())
            .count() as f64
            / self.glowworms.len() as f64
    }

    /// Greedily clusters the valid glowworms by distance and returns one representative (the
    /// fittest member) per cluster — the distinct local optima the swarm found.
    pub fn cluster_representatives(&self, radius: f64) -> Vec<Glowworm> {
        let mut representatives: Vec<Glowworm> = Vec::new();
        for glowworm in self.valid_glowworms() {
            let close_to_existing = representatives
                .iter()
                .any(|r| euclidean(&r.position, &glowworm.position) <= radius);
            if !close_to_existing {
                representatives.push(glowworm.clone());
            }
        }
        representatives
    }
}

/// The glowworm swarm optimizer.
pub struct GlowwormSwarm {
    params: GsoParams,
}

impl GlowwormSwarm {
    /// Creates an optimizer with the given parameters.
    pub fn new(params: GsoParams) -> Self {
        Self { params }
    }

    /// Runs GSO on the fitness landscape and returns the converged swarm.
    pub fn run<F: FitnessFunction + ?Sized>(&self, fitness: &F) -> GsoResult {
        let params = &self.params;
        let bounds = fitness.bounds();
        let dims = bounds.dimensions();
        let mut rng = StdRng::seed_from_u64(params.seed);

        let diagonal = bounds.diagonal().max(f64::MIN_POSITIVE);
        let max_radius = (params.initial_radius_fraction * diagonal).max(1e-9);
        let step = (params.step_fraction * diagonal).max(1e-9);
        let threads = resolve_threads(params.threads);

        // Random initial positions inside the bounds.
        let mut positions: Vec<Vec<f64>> = (0..params.glowworms)
            .map(|_| {
                (0..dims)
                    .map(|d| rng.random_range(bounds.lower[d]..=bounds.upper[d]))
                    .collect()
            })
            .collect();
        let mut luciferin = vec![params.initial_luciferin; params.glowworms];
        let mut radius = vec![max_radius; params.glowworms];
        let mut current_fitness: Vec<f64> = vec![f64::NEG_INFINITY; params.glowworms];

        let mut mean_fitness_history = Vec::with_capacity(params.iterations);
        let mut fitness_evaluations = 0usize;
        let mut iterations_run = 0usize;
        let mut converged = false;

        for _iteration in 0..params.iterations {
            iterations_run += 1;

            // Phase 1: luciferin update (Eq. 6). The whole swarm is evaluated in one batch
            // through `FitnessFunction::fitness_batch` (contiguous candidate blocks fan out
            // over the thread pool); results come back in glowworm order and candidates are
            // independent, so the run is deterministic for any thread count and for batched
            // and unbatched fitness implementations alike. Invalid candidates (non-finite
            // fitness) receive no enhancement, so their luciferin decays and they stop
            // attracting neighbours.
            let evaluated = evaluate_swarm(fitness, &positions, threads);
            fitness_evaluations += params.glowworms;
            let mut total_change = 0.0;
            for (i, value) in evaluated.into_iter().enumerate() {
                current_fitness[i] = value;
                let enhanced = if value.is_finite() {
                    (1.0 - params.rho) * luciferin[i] + params.gamma * value
                } else {
                    (1.0 - params.rho) * luciferin[i]
                };
                total_change += (enhanced - luciferin[i]).abs();
                luciferin[i] = enhanced;
            }

            let finite: Vec<f64> = current_fitness
                .iter()
                .copied()
                .filter(|f| f.is_finite())
                .collect();
            mean_fitness_history.push(if finite.is_empty() {
                f64::NAN
            } else {
                finite.iter().sum::<f64>() / finite.len() as f64
            });

            // Phase 2: movement. Each glowworm picks a brighter neighbour within its decision
            // radius with probability proportional to the luciferin difference (Eq. 7),
            // optionally weighted by the KDE mass of the neighbour's region (Eq. 8).
            let snapshot = positions.clone();
            // Density weights depend only on a glowworm's current position, so they are
            // computed once per iteration instead of once per (glowworm, neighbour) pair.
            let density: Vec<f64> = if params.use_density_guide {
                parallel_map(snapshot.iter().collect(), threads, |p: &&Vec<f64>| {
                    fitness.density_weight(p).max(0.0)
                })
            } else {
                vec![1.0; params.glowworms]
            };
            for i in 0..params.glowworms {
                let mut neighbor_ids: Vec<usize> = Vec::new();
                let mut weights: Vec<f64> = Vec::new();
                for j in 0..params.glowworms {
                    if j == i || luciferin[j] <= luciferin[i] {
                        continue;
                    }
                    let distance = euclidean(&snapshot[i], &snapshot[j]);
                    if distance <= radius[i] {
                        let weight = (luciferin[j] - luciferin[i]) * density[j];
                        if weight > 0.0 {
                            neighbor_ids.push(j);
                            weights.push(weight);
                        }
                    }
                }

                if !neighbor_ids.is_empty() {
                    let total: f64 = weights.iter().sum();
                    let mut target = rng.random::<f64>() * total;
                    let mut chosen = neighbor_ids[neighbor_ids.len() - 1];
                    for (j, w) in neighbor_ids.iter().zip(&weights) {
                        if target < *w {
                            chosen = *j;
                            break;
                        }
                        target -= *w;
                    }
                    let distance = euclidean(&snapshot[i], &snapshot[chosen]).max(1e-12);
                    for d in 0..dims {
                        positions[i][d] += step * (snapshot[chosen][d] - snapshot[i][d]) / distance;
                    }
                    bounds.clamp(&mut positions[i]);
                } else if !current_fitness[i].is_finite() {
                    // A glowworm stuck on an invalid candidate with nobody to follow would
                    // otherwise freeze for the rest of the run. Let it take a small random
                    // exploration step so it can wander back into the feasible part of the
                    // landscape (a standard restart/perturbation device for constrained
                    // swarm optimizers; see the "below"-direction mining workloads where
                    // most of the solution space is infeasible at initialization).
                    for value in positions[i].iter_mut() {
                        *value += step * (rng.random::<f64>() * 2.0 - 1.0);
                    }
                    bounds.clamp(&mut positions[i]);
                }

                // Decision-radius adaptation toward the desired neighbour count.
                let n_i = neighbor_ids.len() as f64;
                radius[i] = (radius[i] + params.beta * (params.desired_neighbors as f64 - n_i))
                    .clamp(1e-9, max_radius);
            }

            let mean_change = total_change / params.glowworms as f64;
            // A swarm with no valid member has not converged — its luciferin uniformly
            // decays toward zero (small change) while the random exploration steps are
            // still searching for the feasible set.
            let any_valid = current_fitness.iter().any(|f| f.is_finite());
            if params.convergence_tolerance > 0.0
                && mean_change < params.convergence_tolerance
                && any_valid
            {
                converged = true;
                break;
            }
        }

        // The luciferin phase evaluates fitness *before* the movement phase, so after the
        // last iteration every stored fitness belongs to the previous position. Re-evaluate
        // at the final positions so `Glowworm::fitness` matches `Glowworm::position` — the
        // fittest glowworms ride the constraint boundary, where a stale value routinely
        // flips validity.
        current_fitness = evaluate_swarm(fitness, &positions, threads);
        fitness_evaluations += params.glowworms;
        let glowworms = positions
            .into_iter()
            .zip(current_fitness)
            .zip(luciferin)
            .map(|((position, fitness), luciferin)| Glowworm {
                position,
                fitness,
                luciferin,
            })
            .collect();
        GsoResult {
            glowworms,
            mean_fitness_history,
            iterations_run,
            converged,
            fitness_evaluations,
        }
    }
}

fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).powi(2))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fitness::{MultiPeak, SolutionBounds};

    #[test]
    fn swarm_finds_both_peaks_of_a_bimodal_landscape() {
        let landscape = MultiPeak::two_peaks();
        let params = GsoParams::default().with_seed(3).with_iterations(120);
        let result = GlowwormSwarm::new(params).run(&landscape);
        let representatives = result.cluster_representatives(0.2);
        // At least two distinct clusters, one near each peak.
        assert!(
            representatives.len() >= 2,
            "found {} clusters",
            representatives.len()
        );
        let near = |target: &[f64]| {
            representatives
                .iter()
                .any(|r| euclidean(&r.position, target) < 0.15)
        };
        assert!(near(&[0.25, 0.25]), "missing peak at (0.25, 0.25)");
        assert!(near(&[0.75, 0.75]), "missing peak at (0.75, 0.75)");
    }

    #[test]
    fn mean_fitness_improves_over_iterations() {
        let landscape = MultiPeak::two_peaks();
        let result = GlowwormSwarm::new(GsoParams::quick().with_seed(1)).run(&landscape);
        let history = &result.mean_fitness_history;
        assert!(!history.is_empty());
        let first = history[0];
        let last = history[history.len() - 1];
        assert!(last >= first, "mean fitness decreased: {first} -> {last}");
        assert!(result.fitness_evaluations >= result.iterations_run * 40);
    }

    #[test]
    fn result_is_deterministic_given_seed() {
        let landscape = MultiPeak::two_peaks();
        let a = GlowwormSwarm::new(GsoParams::quick().with_seed(7)).run(&landscape);
        let b = GlowwormSwarm::new(GsoParams::quick().with_seed(7)).run(&landscape);
        assert_eq!(a.glowworms, b.glowworms);
        let c = GlowwormSwarm::new(GsoParams::quick().with_seed(8)).run(&landscape);
        assert_ne!(a.glowworms, c.glowworms);
    }

    #[test]
    fn trajectory_is_identical_for_every_thread_count() {
        let landscape = MultiPeak::two_peaks();
        let serial =
            GlowwormSwarm::new(GsoParams::quick().with_seed(7).with_threads(1)).run(&landscape);
        let parallel =
            GlowwormSwarm::new(GsoParams::quick().with_seed(7).with_threads(4)).run(&landscape);
        let auto =
            GlowwormSwarm::new(GsoParams::quick().with_seed(7).with_threads(0)).run(&landscape);
        assert_eq!(serial.glowworms, parallel.glowworms);
        assert_eq!(serial.glowworms, auto.glowworms);
        assert_eq!(serial.mean_fitness_history, parallel.mean_fitness_history);
    }

    #[test]
    fn invalid_regions_yield_partial_valid_fraction() {
        /// Fitness valid only in the left half of the square.
        struct HalfValid;
        impl FitnessFunction for HalfValid {
            fn bounds(&self) -> SolutionBounds {
                SolutionBounds::unit(2)
            }
            fn fitness(&self, s: &[f64]) -> f64 {
                if s[0] < 0.5 {
                    1.0 - (s[0] - 0.25).abs()
                } else {
                    f64::NEG_INFINITY
                }
            }
        }
        let result = GlowwormSwarm::new(GsoParams::quick().with_seed(2)).run(&HalfValid);
        // Some glowworms start in the invalid half; lonely invalid ones take random
        // exploration steps, so a healthy share of the swarm ends valid and valid_glowworms
        // only returns the valid ones.
        let fraction = result.valid_fraction();
        assert!(fraction > 0.2 && fraction <= 1.0, "fraction {fraction}");
        assert!(result
            .valid_glowworms()
            .iter()
            .all(|g| g.fitness.is_finite()));
    }

    #[test]
    fn dimension_adaptive_parameters_scale_with_dimensionality() {
        let low = GsoParams::dimension_adaptive(2);
        let high = GsoParams::dimension_adaptive(10);
        assert_eq!(low.glowworms, 100);
        assert_eq!(high.glowworms, 500);
        assert!(high.initial_radius_fraction >= low.initial_radius_fraction);
    }

    #[test]
    fn convergence_flag_and_iteration_budget() {
        let landscape = MultiPeak::two_peaks();
        let params = GsoParams::quick().with_iterations(300).with_seed(5);
        let result = GlowwormSwarm::new(params).run(&landscape);
        assert!(result.iterations_run <= 300);
        // With a tolerance set, long runs should converge before the budget.
        if result.converged {
            assert!(result.iterations_run < 300);
        }
    }

    #[test]
    fn density_guide_toggle_changes_the_trajectory() {
        /// A landscape with a density weight that strongly prefers the second peak.
        struct Weighted(MultiPeak);
        impl FitnessFunction for Weighted {
            fn bounds(&self) -> SolutionBounds {
                self.0.bounds()
            }
            fn fitness(&self, s: &[f64]) -> f64 {
                self.0.fitness(s)
            }
            fn density_weight(&self, s: &[f64]) -> f64 {
                if s[0] > 0.5 {
                    10.0
                } else {
                    0.1
                }
            }
        }
        let landscape = Weighted(MultiPeak::two_peaks());
        let with_guide = GlowwormSwarm::new(GsoParams::quick().with_seed(11)).run(&landscape);
        let without_guide =
            GlowwormSwarm::new(GsoParams::quick().with_seed(11).with_density_guide(false))
                .run(&landscape);
        assert_ne!(with_guide.glowworms, without_guide.glowworms);
    }

    #[test]
    fn cluster_representatives_deduplicate_nearby_solutions() {
        let glowworms = vec![
            Glowworm {
                position: vec![0.2, 0.2],
                fitness: 1.0,
                luciferin: 1.0,
            },
            Glowworm {
                position: vec![0.21, 0.2],
                fitness: 0.9,
                luciferin: 1.0,
            },
            Glowworm {
                position: vec![0.8, 0.8],
                fitness: 0.8,
                luciferin: 1.0,
            },
        ];
        let result = GsoResult {
            glowworms,
            mean_fitness_history: vec![],
            iterations_run: 0,
            converged: false,
            fitness_evaluations: 0,
        };
        let reps = result.cluster_representatives(0.1);
        assert_eq!(reps.len(), 2);
        assert!((reps[0].fitness - 1.0).abs() < 1e-12);
    }
}
