//! The fitness abstraction shared by the swarm optimizers.
//!
//! A candidate solution is a point of a box-bounded real vector space (for SuRF: the
//! `2d`-dimensional region representation `[x, l]`). The optimizers only need to evaluate a
//! fitness value — and, optionally, a non-negative *density weight* used by the KDE-guided
//! movement rule of Eq. 8 — so any objective can be plugged in.

/// Axis-aligned bounds of the solution space.
#[derive(Debug, Clone, PartialEq)]
pub struct SolutionBounds {
    /// Per-variable lower bounds.
    pub lower: Vec<f64>,
    /// Per-variable upper bounds.
    pub upper: Vec<f64>,
}

impl SolutionBounds {
    /// Creates bounds, panicking (debug assert) if the two vectors disagree in length.
    pub fn new(lower: Vec<f64>, upper: Vec<f64>) -> Self {
        debug_assert_eq!(lower.len(), upper.len());
        Self { lower, upper }
    }

    /// The unit hyper-cube `[0, 1]^n`.
    pub fn unit(dimensions: usize) -> Self {
        Self {
            lower: vec![0.0; dimensions],
            upper: vec![1.0; dimensions],
        }
    }

    /// Dimensionality of the solution space.
    pub fn dimensions(&self) -> usize {
        self.lower.len()
    }

    /// Clamps a candidate in place to the bounds.
    pub fn clamp(&self, solution: &mut [f64]) {
        for ((value, lo), hi) in solution.iter_mut().zip(&self.lower).zip(&self.upper) {
            if !value.is_finite() {
                *value = *lo;
            } else {
                *value = value.clamp(*lo, *hi);
            }
        }
    }

    /// Side length of each variable's interval.
    pub fn extents(&self) -> Vec<f64> {
        self.lower
            .iter()
            .zip(&self.upper)
            .map(|(lo, hi)| hi - lo)
            .collect()
    }

    /// Length of the main diagonal of the bounded box (used to size neighbourhood radii).
    pub fn diagonal(&self) -> f64 {
        self.extents().iter().map(|e| e * e).sum::<f64>().sqrt()
    }
}

/// A fitness landscape over a box-bounded solution space. Implementations must be `Sync` so
/// optimizers may evaluate candidates from multiple threads.
pub trait FitnessFunction: Sync {
    /// Bounds of the solution space.
    fn bounds(&self) -> SolutionBounds;

    /// Fitness of a candidate. Higher is better. `NaN` or `-inf` mark invalid candidates
    /// (e.g. regions violating the threshold constraint under the log objective of Eq. 4).
    fn fitness(&self, solution: &[f64]) -> f64;

    /// Fitness of a whole batch of candidates, stored row-major in `solutions` (`dim > 0`
    /// values per candidate), written one value per candidate into `out` (callers guarantee
    /// `solutions.len() == dim * out.len()`).
    ///
    /// The default delegates to [`FitnessFunction::fitness`] candidate by candidate.
    /// Landscapes backed by a batch predictor — SuRF's surrogate fitness evaluates the whole
    /// swarm through a compiled GBRT ensemble — override it for throughput. Overrides
    /// **must** produce exactly the value `fitness` would for every candidate (the swarm
    /// optimizers' batch- and thread-invariance guarantees rely on it).
    fn fitness_batch(&self, solutions: &[f64], dim: usize, out: &mut [f64]) {
        for (candidate, slot) in solutions.chunks(dim).zip(out.iter_mut()) {
            *slot = self.fitness(candidate);
        }
    }

    /// Non-negative weight proportional to the data density around the candidate, used by the
    /// KDE-guided movement rule (Eq. 8). The default of 1 disables the guidance.
    fn density_weight(&self, _solution: &[f64]) -> f64 {
        1.0
    }

    /// Dimensionality of the solution space (defaults to the bounds' dimensionality).
    fn dimensions(&self) -> usize {
        self.bounds().dimensions()
    }
}

/// Evaluates every position through [`FitnessFunction::fitness_batch`], fanning contiguous
/// candidate blocks out over up to `threads` OS threads. This is the per-iteration swarm
/// evaluation primitive shared by GSO and PSO: positions are flattened once into a row-major
/// buffer, so a batch-capable fitness sees the whole swarm (or a thread's share of it) in a
/// single call. Candidates are independent, so the result is identical for every thread
/// count and identical to calling [`FitnessFunction::fitness`] per candidate.
pub fn evaluate_swarm<F: FitnessFunction + ?Sized>(
    fitness: &F,
    positions: &[Vec<f64>],
    threads: usize,
) -> Vec<f64> {
    let n = positions.len();
    if n == 0 {
        return Vec::new();
    }
    // One coarse span per whole-swarm evaluation (the mining hot loop's unit of work);
    // a disabled global recorder costs one relaxed load here.
    let obs = surf_obs::global();
    let span = obs.timer();
    let dim = positions[0].len();
    if dim == 0 {
        return positions.iter().map(|p| fitness.fitness(p)).collect();
    }
    debug_assert!(positions.iter().all(|p| p.len() == dim));
    let mut flat = Vec::with_capacity(n * dim);
    for position in positions {
        flat.extend_from_slice(position);
    }
    let mut out = vec![0.0; n];
    let threads = threads.max(1);
    if threads == 1 || n == 1 {
        fitness.fitness_batch(&flat, dim, &mut out);
        obs.record(&obs.optim_swarm_fitness, span);
        return out;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (candidates, slots) in flat.chunks(chunk * dim).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || fitness.fitness_batch(candidates, dim, slots));
        }
    });
    obs.record(&obs.optim_swarm_fitness, span);
    out
}

/// A fitness landscape with `k` Gaussian peaks on the unit square — a small multimodal
/// benchmark used by the optimizer unit tests and the convergence experiments.
#[derive(Debug, Clone)]
pub struct MultiPeak {
    /// Peak centres.
    pub centers: Vec<Vec<f64>>,
    /// Peak width (standard deviation of each Gaussian bump).
    pub width: f64,
    /// Dimensionality of the space.
    pub dimensions: usize,
}

impl MultiPeak {
    /// Standard two-peak landscape on `[0, 1]^2`.
    pub fn two_peaks() -> Self {
        Self {
            centers: vec![vec![0.25, 0.25], vec![0.75, 0.75]],
            width: 0.1,
            dimensions: 2,
        }
    }

    /// `k` peaks spread along the main diagonal of `[0, 1]^dims`.
    pub fn diagonal_peaks(k: usize, dims: usize) -> Self {
        let centers = (0..k)
            .map(|i| vec![(i as f64 + 1.0) / (k as f64 + 1.0); dims])
            .collect();
        Self {
            centers,
            width: 0.08,
            dimensions: dims,
        }
    }
}

impl FitnessFunction for MultiPeak {
    fn bounds(&self) -> SolutionBounds {
        SolutionBounds::unit(self.dimensions)
    }

    fn fitness(&self, solution: &[f64]) -> f64 {
        self.centers
            .iter()
            .map(|c| {
                let d2: f64 = c
                    .iter()
                    .zip(solution)
                    .map(|(ci, si)| (ci - si).powi(2))
                    .sum();
                (-d2 / (2.0 * self.width * self.width)).exp()
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_clamp_and_extents() {
        let bounds = SolutionBounds::new(vec![0.0, -1.0], vec![1.0, 1.0]);
        let mut candidate = vec![1.5, f64::NAN];
        bounds.clamp(&mut candidate);
        assert_eq!(candidate, vec![1.0, -1.0]);
        assert_eq!(bounds.extents(), vec![1.0, 2.0]);
        assert!((bounds.diagonal() - (5.0_f64).sqrt()).abs() < 1e-12);
        assert_eq!(bounds.dimensions(), 2);
    }

    #[test]
    fn unit_bounds() {
        let bounds = SolutionBounds::unit(3);
        assert_eq!(bounds.lower, vec![0.0; 3]);
        assert_eq!(bounds.upper, vec![1.0; 3]);
    }

    #[test]
    fn multi_peak_is_highest_at_its_centres() {
        let peaks = MultiPeak::two_peaks();
        let at_center = peaks.fitness(&[0.25, 0.25]);
        let off_center = peaks.fitness(&[0.5, 0.1]);
        assert!((at_center - 1.0).abs() < 1e-9);
        assert!(off_center < at_center);
        assert_eq!(peaks.dimensions(), 2);
        assert_eq!(peaks.density_weight(&[0.5, 0.5]), 1.0);
    }

    #[test]
    fn diagonal_peaks_builds_k_centres() {
        let peaks = MultiPeak::diagonal_peaks(3, 4);
        assert_eq!(peaks.centers.len(), 3);
        assert!(peaks.centers.iter().all(|c| c.len() == 4));
        // Peaks are inside the unit cube.
        assert!(peaks.centers.iter().flatten().all(|&v| v > 0.0 && v < 1.0));
    }
}
