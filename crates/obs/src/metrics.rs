//! Atomic instruments and the registry that names them.
//!
//! Recording is lock-free: a [`Counter`] add, a [`Gauge`] store and a [`Histogram`]
//! observation are all relaxed atomic operations on pre-allocated cells — no allocation,
//! no lock, no syscall. The registry's mutex is touched only at *registration* (server
//! start-up) and *snapshot* (a `/metrics` or `/stats` scrape), never on a request path.
//!
//! Determinism: histogram observations are integer nanoseconds into integer buckets, so
//! concurrent recording commutes — a snapshot's bucket counts and sum are independent of
//! the interleaving order of the recording threads (pinned by the crate's proptest suite).
//! Snapshots list families sorted by name and series sorted by label set, so two
//! snapshots of the same state render byte-identically.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A new counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed gauge (current level of something: open connections, queue depth).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A new gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds one to the level.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one from the level.
    pub fn dec(&self) {
        self.value.fetch_sub(1, Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-boundary histogram with atomic buckets.
///
/// Boundaries are inclusive upper bounds in the observed unit (the workspace convention
/// is integer nanoseconds, names ending `_nanos`); one implicit overflow bucket follows
/// the last boundary. Observation is two relaxed `fetch_add`s plus a branchless-ish
/// bucket scan over a boundary array that fits in a cache line or two.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// One cell per bound plus the overflow bucket.
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
}

/// A point-in-time copy of one histogram's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds, strictly increasing.
    pub bounds: Vec<u64>,
    /// Per-bucket (non-cumulative) observation counts; `counts.len() == bounds.len() + 1`
    /// with the final entry counting observations above the last bound.
    pub counts: Vec<u64>,
    /// Sum of observed values.
    pub sum: u64,
    /// Total observations (always exactly `counts.iter().sum()`, so a rendered `_count`
    /// agrees with the `+Inf` bucket even under concurrent recording).
    pub count: u64,
}

impl Histogram {
    /// A histogram over the given inclusive upper bounds. Unsorted or duplicated bounds
    /// are sorted and deduplicated rather than rejected — there is no invalid boundary
    /// set, only a less useful one.
    pub fn new(bounds: &[u64]) -> Self {
        let mut bounds = bounds.to_vec();
        bounds.sort_unstable();
        bounds.dedup();
        let buckets = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            buckets,
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let bucket = self
            .bounds
            .iter()
            .position(|&bound| value <= bound)
            .unwrap_or(self.bounds.len());
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a duration as integer nanoseconds (saturating past ~584 years).
    pub fn observe_duration(&self, duration: Duration) {
        self.observe(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX));
    }

    /// The boundary set.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Copies out the current state. `count` is derived from the bucket counts, so the
    /// `_count`/`+Inf` invariant holds in every snapshot; `sum` may trail or lead by the
    /// observations in flight between the two reads (the standard scrape race).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|cell| cell.load(Ordering::Relaxed))
            .collect();
        let count = counts.iter().sum();
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts,
            sum: self.sum.load(Ordering::Relaxed),
            count,
        }
    }
}

/// The default duration boundaries: 1 µs doubling up to ~16.8 s (25 buckets + overflow),
/// in nanoseconds. Wide enough to hold both a histogram-build span and a full training
/// round without tuning.
pub fn default_duration_bounds() -> Vec<u64> {
    (0..25).map(|k| 1_000u64 << k).collect()
}

/// What a series measures, for the `# TYPE` exposition line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstrumentKind {
    /// Monotonic counter.
    Counter,
    /// Signed level.
    Gauge,
    /// Bucketed distribution.
    Histogram,
}

impl InstrumentKind {
    /// The Prometheus `# TYPE` keyword.
    pub fn type_keyword(self) -> &'static str {
        match self {
            InstrumentKind::Counter => "counter",
            InstrumentKind::Gauge => "gauge",
            InstrumentKind::Histogram => "histogram",
        }
    }
}

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Instrument {
    fn kind(&self) -> InstrumentKind {
        match self {
            Instrument::Counter(_) => InstrumentKind::Counter,
            Instrument::Gauge(_) => InstrumentKind::Gauge,
            Instrument::Histogram(_) => InstrumentKind::Histogram,
        }
    }
}

struct SeriesEntry {
    labels: Vec<(String, String)>,
    instrument: Instrument,
}

struct FamilyEntry {
    name: String,
    help: String,
    kind: InstrumentKind,
    series: Vec<SeriesEntry>,
}

/// A named collection of instruments. Registration is idempotent: asking for the same
/// `(name, labels)` again returns the already-registered instrument, so call sites can
/// register where they record without coordinating start-up order.
#[derive(Default)]
pub struct MetricsRegistry {
    families: Mutex<Vec<FamilyEntry>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Locks the family table, recovering a poisoned mutex: the table holds `Arc`s and
    /// plain strings that a panicking sibling cannot leave torn (every mutation below is
    /// a single `push` or a read).
    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<FamilyEntry>> {
        self.families.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers (or retrieves) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Registers (or retrieves) a counter series under `labels`.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.instrument(name, help, labels, || {
            Instrument::Counter(Arc::new(Counter::new()))
        }) {
            Instrument::Counter(c) => c,
            // Name/kind conflict: hand back a detached instrument instead of panicking —
            // the caller still records, the conflicting series just is not exported twice.
            _ => Arc::new(Counter::new()),
        }
    }

    /// Registers (or retrieves) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or retrieves) a gauge series under `labels`.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.instrument(name, help, labels, || {
            Instrument::Gauge(Arc::new(Gauge::new()))
        }) {
            Instrument::Gauge(g) => g,
            _ => Arc::new(Gauge::new()),
        }
    }

    /// Registers (or retrieves) an unlabeled histogram over `bounds`.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[u64]) -> Arc<Histogram> {
        self.histogram_with(name, help, bounds, &[])
    }

    /// Registers (or retrieves) a histogram series under `labels`.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        bounds: &[u64],
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        match self.instrument(name, help, labels, || {
            Instrument::Histogram(Arc::new(Histogram::new(bounds)))
        }) {
            Instrument::Histogram(h) => h,
            _ => Arc::new(Histogram::new(bounds)),
        }
    }

    fn instrument(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        build: impl FnOnce() -> Instrument,
    ) -> Instrument {
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut families = self.lock();
        if let Some(family) = families.iter_mut().find(|f| f.name == name) {
            if let Some(series) = family.series.iter().find(|s| s.labels == labels) {
                return clone_instrument(&series.instrument);
            }
            let instrument = build();
            if instrument.kind() != family.kind {
                return instrument; // kind conflict: record detached, export nothing new
            }
            let out = clone_instrument(&instrument);
            family.series.push(SeriesEntry { labels, instrument });
            return out;
        }
        let instrument = build();
        let out = clone_instrument(&instrument);
        families.push(FamilyEntry {
            name: name.to_string(),
            help: help.to_string(),
            kind: instrument.kind(),
            series: vec![SeriesEntry { labels, instrument }],
        });
        out
    }

    /// Copies every registered series out into a [`Snapshot`] (sorted, deterministic).
    pub fn snapshot(&self) -> Snapshot {
        let families = self.lock();
        let mut snapshot = Snapshot::new();
        for family in families.iter() {
            for series in &family.series {
                let labels: Vec<(&str, &str)> = series
                    .labels
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.as_str()))
                    .collect();
                match &series.instrument {
                    Instrument::Counter(c) => {
                        snapshot.push_counter(&family.name, &family.help, &labels, c.get());
                    }
                    Instrument::Gauge(g) => {
                        snapshot.push_gauge(&family.name, &family.help, &labels, g.get());
                    }
                    Instrument::Histogram(h) => {
                        snapshot.push_histogram(&family.name, &family.help, &labels, h.snapshot());
                    }
                }
            }
        }
        snapshot.sort();
        snapshot
    }
}

fn clone_instrument(instrument: &Instrument) -> Instrument {
    match instrument {
        Instrument::Counter(c) => Instrument::Counter(Arc::clone(c)),
        Instrument::Gauge(g) => Instrument::Gauge(Arc::clone(g)),
        Instrument::Histogram(h) => Instrument::Histogram(Arc::clone(h)),
    }
}

/// One series' value inside a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(i64),
    /// Float gauge reading — for snapshot-only values that are not integral (e.g. compile
    /// times in seconds). No live [`Gauge`] instrument backs this variant; producers push
    /// it straight into assembled snapshots.
    GaugeF64(f64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// One labeled series inside a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// Label pairs in registration order.
    pub labels: Vec<(String, String)>,
    /// The reading.
    pub value: SampleValue,
}

/// One metric family (a name, its help text, and every labeled series under it).
#[derive(Debug, Clone, PartialEq)]
pub struct FamilySnapshot {
    /// Metric name (`snake_case`, `surf_<layer>_` prefixed by convention).
    pub name: String,
    /// Help text for the `# HELP` line.
    pub help: String,
    /// What the series measure.
    pub kind: InstrumentKind,
    /// The labeled series.
    pub series: Vec<SeriesSnapshot>,
}

/// A point-in-time copy of a registry (or an assembled view over several sources —
/// the serve layer appends component counters to its registry snapshot before
/// rendering). Deterministic order after [`Snapshot::sort`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// The families, sorted by name once [`Snapshot::sort`] has run.
    pub families: Vec<FamilySnapshot>,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Snapshot::default()
    }

    fn push(
        &mut self,
        name: &str,
        help: &str,
        kind: InstrumentKind,
        labels: &[(&str, &str)],
        value: SampleValue,
    ) {
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let series = SeriesSnapshot { labels, value };
        if let Some(family) = self.families.iter_mut().find(|f| f.name == name) {
            if family.kind == kind {
                family.series.push(series);
            }
            return;
        }
        self.families.push(FamilySnapshot {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            series: vec![series],
        });
    }

    /// Appends a counter sample (creating the family on first use).
    pub fn push_counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.push(
            name,
            help,
            InstrumentKind::Counter,
            labels,
            SampleValue::Counter(value),
        );
    }

    /// Appends a gauge sample (creating the family on first use).
    pub fn push_gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: i64) {
        self.push(
            name,
            help,
            InstrumentKind::Gauge,
            labels,
            SampleValue::Gauge(value),
        );
    }

    /// Appends a float gauge sample (creating the family on first use).
    pub fn push_gauge_f64(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.push(
            name,
            help,
            InstrumentKind::Gauge,
            labels,
            SampleValue::GaugeF64(value),
        );
    }

    /// Appends a histogram sample (creating the family on first use).
    pub fn push_histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        value: HistogramSnapshot,
    ) {
        self.push(
            name,
            help,
            InstrumentKind::Histogram,
            labels,
            SampleValue::Histogram(value),
        );
    }

    /// Merges another snapshot's families into this one (series of an existing family are
    /// appended; call [`Snapshot::sort`] afterwards to restore deterministic order).
    pub fn merge(&mut self, other: Snapshot) {
        for family in other.families {
            match self
                .families
                .iter_mut()
                .find(|f| f.name == family.name && f.kind == family.kind)
            {
                Some(existing) => existing.series.extend(family.series),
                None => self.families.push(family),
            }
        }
    }

    /// Sorts families by name and each family's series by label set, so rendering the
    /// same state twice produces byte-identical output.
    pub fn sort(&mut self) {
        for family in &mut self.families {
            family.series.sort_by(|a, b| a.labels.cmp(&b.labels));
        }
        self.families.sort_by(|a, b| a.name.cmp(&b.name));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn histogram_buckets_observations_inclusively() {
        let h = Histogram::new(&[10, 100, 1000]);
        for v in [1, 10, 11, 100, 5000] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.counts, vec![2, 2, 0, 1]);
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 1 + 10 + 11 + 100 + 5000);
    }

    #[test]
    fn histogram_sanitizes_unsorted_bounds() {
        let h = Histogram::new(&[100, 10, 100]);
        assert_eq!(h.bounds(), &[10, 100]);
        h.observe_duration(Duration::from_nanos(50));
        assert_eq!(h.snapshot().counts, vec![0, 1, 0]);
    }

    #[test]
    fn registration_is_idempotent_and_shared() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("surf_test_total", "help");
        let b = registry.counter("surf_test_total", "help");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same series, same cell");
        let labeled = registry.counter_with("surf_test_total", "help", &[("route", "/x")]);
        labeled.add(5);
        let snap = registry.snapshot();
        assert_eq!(snap.families.len(), 1);
        assert_eq!(snap.families[0].series.len(), 2);
    }

    #[test]
    fn kind_conflicts_hand_back_detached_instruments() {
        let registry = MetricsRegistry::new();
        let _c = registry.counter("surf_conflict", "help");
        let g = registry.gauge("surf_conflict", "help");
        g.set(9); // must not panic, must not corrupt the exported family
        let snap = registry.snapshot();
        assert_eq!(snap.families.len(), 1);
        assert_eq!(snap.families[0].kind, InstrumentKind::Counter);
        assert_eq!(snap.families[0].series.len(), 1);
    }

    #[test]
    fn snapshot_order_is_deterministic() {
        let registry = MetricsRegistry::new();
        registry.counter_with("surf_b_total", "b", &[("route", "/z")]);
        registry.counter_with("surf_b_total", "b", &[("route", "/a")]);
        registry.gauge("surf_a_level", "a");
        let snap = registry.snapshot();
        assert_eq!(snap.families[0].name, "surf_a_level");
        assert_eq!(snap.families[1].series[0].labels[0].1, "/a");
        assert_eq!(snap.families[1].series[1].labels[0].1, "/z");
    }

    #[test]
    fn merge_appends_and_resorts() {
        let a = MetricsRegistry::new();
        a.counter("surf_shared_total", "h").add(1);
        let b = MetricsRegistry::new();
        b.counter_with("surf_shared_total", "h", &[("src", "b")])
            .add(2);
        b.gauge("surf_only_b", "h").set(3);
        let mut merged = a.snapshot();
        merged.merge(b.snapshot());
        merged.sort();
        assert_eq!(merged.families.len(), 2);
        let shared = &merged.families[1];
        assert_eq!(shared.name, "surf_shared_total");
        assert_eq!(shared.series.len(), 2);
    }

    #[test]
    fn default_duration_bounds_double_from_one_micro() {
        let bounds = default_duration_bounds();
        assert_eq!(bounds[0], 1_000);
        assert_eq!(bounds.len(), 25);
        for pair in bounds.windows(2) {
            assert_eq!(pair[1], pair[0] * 2);
        }
    }
}
