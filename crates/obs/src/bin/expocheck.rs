//! `expocheck` — validate a Prometheus text-exposition document.
//!
//! Usage: `expocheck <file>` (or `-` for stdin). Exits 0 when the document is
//! well-formed per [`surf_obs::expo::validate`], 1 with one violation per line on
//! stderr otherwise. CI curls `/metrics` from the e2e server and pipes it here.

use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: expocheck <file|->");
        return ExitCode::from(2);
    };
    let text = if path == "-" {
        let mut buf = String::new();
        match std::io::stdin().read_to_string(&mut buf) {
            Ok(_) => buf,
            Err(e) => {
                eprintln!("expocheck: reading stdin: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("expocheck: reading {path}: {e}");
                return ExitCode::from(2);
            }
        }
    };
    match surf_obs::expo::validate(&text) {
        Ok(()) => {
            let samples = surf_obs::expo::parse(&text).map(|s| s.len()).unwrap_or(0);
            println!("expocheck: OK ({samples} samples)");
            ExitCode::SUCCESS
        }
        Err(errors) => {
            for error in &errors {
                eprintln!("expocheck: {error}");
            }
            eprintln!("expocheck: {} violation(s)", errors.len());
            ExitCode::FAILURE
        }
    }
}
