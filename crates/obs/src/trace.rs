//! Lightweight per-request tracing and the sampling flight recorder.
//!
//! A [`Trace`] is a label, a monotonic start instant, and a bounded list of named
//! [`SpanRecord`]s. Traces are plain owned values: the request path carries one through
//! the pipeline (parse → queue → handler → serialize) and hands it back to the
//! [`FlightRecorder`] when the response is written. Deep call sites that cannot see the
//! request (the predict kernel under a route handler, coalesced-batch fusion) attach
//! spans through a thread-local *current trace* installed around the dispatch — see
//! [`install`], [`record_span`], [`take`].
//!
//! Sampling happens at [`FlightRecorder::begin`]: one request in every `sample_every`
//! gets a trace, the rest pay a single atomic increment. Finished samples land in small
//! per-shard rings so `/trace` readers never contend with more than one shard at a time.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

use serde::Serialize;

/// Spans kept per trace; later spans only bump [`TraceSample::dropped_spans`]. Big
/// enough for every request shape the stack produces (a request records well under a
/// dozen), small enough that a pathological caller cannot balloon the recorder.
const MAX_SPANS: usize = 64;

/// Ring shards in a [`FlightRecorder`]. Writers pick a shard by sequence number, so
/// concurrent finishes rarely share a lock.
const SHARDS: usize = 8;

/// One timed, named section of a request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct SpanRecord {
    /// Span name (`recv_parse`, `queue_wait`, `kernel`, ...).
    pub name: String,
    /// Offset of the span start from the trace start, in nanoseconds.
    pub start_nanos: u64,
    /// Span duration in nanoseconds.
    pub duration_nanos: u64,
}

/// An in-flight request trace. Created by [`FlightRecorder::begin`], carried through the
/// request pipeline, completed by [`FlightRecorder::finish`].
#[derive(Debug)]
pub struct Trace {
    seq: u64,
    label: String,
    started: Instant,
    spans: Vec<SpanRecord>,
    dropped_spans: u64,
}

impl Trace {
    /// Records a span that started at `started` and ends now. Span offsets are measured
    /// against the trace start; a span that began before the trace (e.g. socket bytes
    /// that arrived before sampling decided) clamps its offset to zero.
    pub fn record_span(&mut self, name: &str, started: Instant) {
        let duration = started.elapsed();
        if self.spans.len() >= MAX_SPANS {
            self.dropped_spans += 1;
            return;
        }
        let start_nanos = started
            .checked_duration_since(self.started)
            .map(saturating_nanos)
            .unwrap_or(0);
        self.spans.push(SpanRecord {
            name: name.to_string(),
            start_nanos,
            duration_nanos: saturating_nanos(duration),
        });
    }

    /// Records an already-measured span (used when the measurement happened on another
    /// thread, e.g. the coalescing batcher timing the fused kernel).
    pub fn record_measured(&mut self, name: &str, start_nanos: u64, duration_nanos: u64) {
        if self.spans.len() >= MAX_SPANS {
            self.dropped_spans += 1;
            return;
        }
        self.spans.push(SpanRecord {
            name: name.to_string(),
            start_nanos,
            duration_nanos,
        });
    }

    /// Nanoseconds since this trace began (the offset a new span would start at).
    pub fn elapsed_nanos(&self) -> u64 {
        saturating_nanos(self.started.elapsed())
    }

    /// The label this trace was begun with (typically `METHOD path`).
    pub fn label(&self) -> &str {
        &self.label
    }
}

fn saturating_nanos(duration: std::time::Duration) -> u64 {
    u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX)
}

/// A completed, recorded trace as served by `/trace`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct TraceSample {
    /// Position of the traced request in the sampling sequence (monotonically
    /// increasing; newest sample = highest `seq`).
    pub seq: u64,
    /// The trace label (typically `METHOD path`).
    pub label: String,
    /// End-to-end duration in nanoseconds.
    pub total_nanos: u64,
    /// Recorded spans in completion order.
    pub spans: Vec<SpanRecord>,
    /// Spans discarded after the per-trace cap was reached.
    pub dropped_spans: u64,
}

/// A bounded, sampling recorder of the most recent request traces.
pub struct FlightRecorder {
    sample_every: u64,
    seq: AtomicU64,
    per_shard: usize,
    shards: Vec<Mutex<VecDeque<TraceSample>>>,
}

impl FlightRecorder {
    /// A recorder sampling one request in `sample_every` (0 = never) and retaining about
    /// `capacity` most-recent samples across its shards.
    pub fn new(sample_every: u64, capacity: usize) -> Self {
        let per_shard = capacity.div_ceil(SHARDS).max(1);
        FlightRecorder {
            sample_every,
            seq: AtomicU64::new(0),
            per_shard,
            shards: (0..SHARDS).map(|_| Mutex::new(VecDeque::new())).collect(),
        }
    }

    /// Decides whether this request is sampled; the unsampled path is one relaxed
    /// `fetch_add`. Returns the trace to carry when it is.
    pub fn begin(&self, label: &str) -> Option<Trace> {
        if self.sample_every == 0 {
            return None;
        }
        let n = self.seq.fetch_add(1, Ordering::Relaxed);
        if n % self.sample_every != 0 {
            return None;
        }
        Some(Trace {
            seq: n / self.sample_every,
            label: label.to_string(),
            started: Instant::now(),
            spans: Vec::new(),
            dropped_spans: 0,
        })
    }

    /// Completes a trace and stores it, evicting the oldest sample in its shard when the
    /// ring is full.
    pub fn finish(&self, trace: Trace) {
        let sample = TraceSample {
            seq: trace.seq,
            label: trace.label,
            total_nanos: saturating_nanos(trace.started.elapsed()),
            spans: trace.spans,
            dropped_spans: trace.dropped_spans,
        };
        let index = usize::try_from(sample.seq).unwrap_or(0) % self.shards.len();
        if let Some(shard) = self.shards.get(index) {
            // Poisoning cannot corrupt a VecDeque of plain data; recover and keep
            // recording rather than losing the recorder for the process lifetime.
            let mut ring = shard.lock().unwrap_or_else(PoisonError::into_inner);
            if ring.len() >= self.per_shard {
                ring.pop_front();
            }
            ring.push_back(sample);
        }
    }

    /// The `n` most recent samples, newest first. Locks one shard at a time so a reader
    /// never stalls more than one concurrent writer.
    pub fn samples(&self, n: usize) -> Vec<TraceSample> {
        let mut all: Vec<TraceSample> = Vec::new();
        for shard in &self.shards {
            // Same poison posture as `finish`; the guard is scoped to this iteration so
            // at most one shard is held at a time.
            let ring = shard.lock().unwrap_or_else(PoisonError::into_inner);
            all.extend(ring.iter().cloned());
        }
        all.sort_by_key(|sample| std::cmp::Reverse(sample.seq));
        all.truncate(n);
        all
    }

    /// Total requests that passed through [`FlightRecorder::begin`] (sampled or not).
    pub fn requests_seen(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Trace>> = const { RefCell::new(None) };
}

/// Installs `trace` as this thread's current trace for the duration of a dispatch.
/// Returns the trace that was previously installed (callers restore it on the way out,
/// though in practice dispatches do not nest).
pub fn install(trace: Trace) -> Option<Trace> {
    CURRENT.with(|cell| match cell.try_borrow_mut() {
        Ok(mut slot) => slot.replace(trace),
        Err(_) => None,
    })
}

/// Removes and returns this thread's current trace.
pub fn take() -> Option<Trace> {
    CURRENT.with(|cell| match cell.try_borrow_mut() {
        Ok(mut slot) => slot.take(),
        Err(_) => None,
    })
}

/// Whether a trace is installed on this thread.
pub fn is_active() -> bool {
    CURRENT.with(|cell| match cell.try_borrow() {
        Ok(slot) => slot.is_some(),
        Err(_) => false,
    })
}

/// Starts a span timer if (and only if) this thread currently carries a trace — the
/// cheap guard deep call sites use so the untraced path never reads the clock.
pub fn span_timer() -> Option<Instant> {
    if is_active() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Records a span ending now onto this thread's current trace, if both the timer and the
/// trace exist. Safe to call unconditionally from deep call sites.
pub fn record_span(name: &str, started: Option<Instant>) {
    let Some(started) = started else { return };
    CURRENT.with(|cell| {
        if let Ok(mut slot) = cell.try_borrow_mut() {
            if let Some(trace) = slot.as_mut() {
                trace.record_span(name, started);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn sampling_takes_one_in_every_n() {
        let recorder = FlightRecorder::new(4, 64);
        let mut sampled = 0;
        for _ in 0..16 {
            if let Some(trace) = recorder.begin("GET /x") {
                recorder.finish(trace);
                sampled += 1;
            }
        }
        assert_eq!(sampled, 4);
        assert_eq!(recorder.requests_seen(), 16);
        assert_eq!(recorder.samples(16).len(), 4);
        let none = FlightRecorder::new(0, 64);
        assert!(none.begin("GET /x").is_none());
    }

    #[test]
    fn samples_return_newest_first_and_rings_evict() {
        let recorder = FlightRecorder::new(1, 8);
        for _ in 0..100 {
            if let Some(trace) = recorder.begin("GET /x") {
                recorder.finish(trace);
            }
        }
        let samples = recorder.samples(100);
        // 8 shards x ceil(8/8)=1 per shard.
        assert_eq!(samples.len(), 8);
        for pair in samples.windows(2) {
            assert!(pair[0].seq > pair[1].seq, "newest first");
        }
        assert_eq!(samples[0].seq, 99);
        assert_eq!(recorder.samples(3).len(), 3);
    }

    #[test]
    fn spans_record_offsets_and_cap_with_drop_count() {
        let recorder = FlightRecorder::new(1, 4);
        let mut trace = recorder.begin("POST /predict").unwrap();
        assert_eq!(trace.label(), "POST /predict");
        let started = Instant::now();
        std::thread::sleep(Duration::from_millis(2));
        trace.record_span("kernel", started);
        trace.record_measured("batch_wait", 10, 20);
        for i in 0..(MAX_SPANS * 2) {
            trace.record_measured("filler", i as u64, 1);
        }
        recorder.finish(trace);
        let sample = recorder.samples(1).into_iter().next().unwrap();
        assert_eq!(sample.spans.len(), MAX_SPANS);
        assert_eq!(
            sample.dropped_spans,
            (MAX_SPANS * 2) as u64 - (MAX_SPANS as u64 - 2)
        );
        assert_eq!(sample.spans[0].name, "kernel");
        assert!(sample.spans[0].duration_nanos >= 2_000_000);
        assert!(sample.total_nanos >= sample.spans[0].duration_nanos);
        assert_eq!(sample.spans[1].name, "batch_wait");
        assert_eq!(sample.spans[1].start_nanos, 10);
    }

    #[test]
    fn thread_local_current_trace_attaches_spans_from_deep_call_sites() {
        assert!(!is_active());
        assert!(span_timer().is_none());
        record_span("ignored", Some(Instant::now())); // no trace installed: no-op

        let recorder = FlightRecorder::new(1, 4);
        let trace = recorder.begin("POST /mine").unwrap();
        assert!(install(trace).is_none());
        assert!(is_active());
        let timer = span_timer();
        assert!(timer.is_some());
        record_span("swarm_fitness", timer);
        record_span("skipped", None);
        let trace = take().unwrap();
        assert!(!is_active());
        recorder.finish(trace);
        let sample = recorder.samples(1).into_iter().next().unwrap();
        assert_eq!(sample.spans.len(), 1);
        assert_eq!(sample.spans[0].name, "swarm_fitness");
    }

    #[test]
    fn trace_samples_serialize_to_json() {
        let recorder = FlightRecorder::new(1, 4);
        let mut trace = recorder.begin("GET /models").unwrap();
        trace.record_measured("recv_parse", 0, 1_000);
        recorder.finish(trace);
        let samples = recorder.samples(1);
        let json = serde_json::to_string(&samples).unwrap();
        assert!(json.contains("\"label\":\"GET /models\""), "{json}");
        assert!(json.contains("\"recv_parse\""), "{json}");
        assert!(json.contains("\"dropped_spans\":0"), "{json}");
    }
}
