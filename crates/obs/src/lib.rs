//! # surf-obs
//!
//! Dependency-free observability for the SuRF stack: metrics, tracing and a flight
//! recorder, built so that *recording* never takes a lock and *reading* never blocks a
//! request.
//!
//! Three layers:
//!
//! * [`metrics`] — monotonic [`metrics::Counter`]s, [`metrics::Gauge`]s and fixed-boundary
//!   log-bucketed [`metrics::Histogram`]s whose hot path is a handful of relaxed atomic
//!   adds. Instruments register once in a [`metrics::MetricsRegistry`] and are then shared
//!   as `Arc`s; snapshots are deterministic in order (families sorted by name, series by
//!   label set) and mergeable across registries.
//! * [`expo`] — a hand-rolled Prometheus text-exposition writer over registry snapshots
//!   (`# HELP`/`# TYPE`, label escaping, cumulative `_bucket`/`_sum`/`_count`), plus a
//!   parser and a well-formedness [`expo::validate`] checker used by tests, the
//!   `expocheck` bin and the serve benchmark.
//! * [`trace`] — a per-request [`trace::Trace`] of named spans timed on the monotonic
//!   clock, fed into a sampling [`trace::FlightRecorder`] of bounded per-shard rings.
//!   Deep call sites (the kernel under a route handler, a swarm iteration under `/mine`)
//!   attach spans through a thread-local current trace without threading a handle through
//!   every signature.
//!
//! Histogram observations are integer nanoseconds, not float seconds: integer atomic adds
//! commute, so a concurrent snapshot is independent of thread interleaving order — the
//! property the workspace's determinism posture demands of every merge.
//!
//! The per-server recorders live behind an [`ObsConfig`]; library-level coarse spans
//! (training rounds in `surf-ml`, swarm evaluations in `surf-optim`) record through the
//! process-wide [`global()`] handle, whose disabled path is a single relaxed load.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Recording must never panic a worker thread out from under a request; tests keep the
// usual shortcuts. `surf-analyze check` enforces the same invariant per module.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod expo;
pub mod metrics;
pub mod trace;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, LazyLock};
use std::time::Instant;

use serde::{Deserialize, Serialize};

pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, Snapshot};
pub use trace::{FlightRecorder, Trace, TraceSample};

/// Switches for the per-server recorders. Metrics and tracing are independently
/// toggleable so benchmarks can pin either mode and measure the other's overhead.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsConfig {
    /// Record the latency-breakdown histograms (the counters and gauges that `/stats`
    /// always served keep updating regardless — they cost what they always cost).
    pub metrics: bool,
    /// Assemble sampled per-request traces for the flight recorder.
    pub tracing: bool,
    /// Sample one request trace out of every `trace_sample_every` (0 disables sampling
    /// even when `tracing` is on).
    pub trace_sample_every: u64,
    /// Most recent traces the flight recorder retains across its shards.
    pub trace_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            metrics: true,
            tracing: true,
            trace_sample_every: 16,
            trace_capacity: 256,
        }
    }
}

impl ObsConfig {
    /// Everything off: the configuration benches pin to measure the uninstrumented
    /// baseline.
    pub fn disabled() -> Self {
        ObsConfig {
            metrics: false,
            tracing: false,
            trace_sample_every: 0,
            trace_capacity: 0,
        }
    }
}

/// The process-wide observability handle for library-level coarse spans: training and
/// mining record here because they run under no particular server (CLI `train`, tests,
/// or a `/mine` handler alike). Servers render this registry into their `/metrics`
/// output alongside their own.
pub struct GlobalObs {
    /// The process-wide registry the well-known instruments below live in.
    pub registry: MetricsRegistry,
    /// Per-boosting-round `fit_round` wall time (`surf-ml`).
    pub ml_round_fit: Arc<Histogram>,
    /// Per-node gradient/hessian histogram build time (`surf-ml`).
    pub ml_hist_build: Arc<Histogram>,
    /// Per-node best-split search time over built histograms (`surf-ml`).
    pub ml_split_search: Arc<Histogram>,
    /// Per-iteration whole-swarm fitness evaluation time (`surf-optim`).
    pub optim_swarm_fitness: Arc<Histogram>,
    enabled: AtomicBool,
}

impl GlobalObs {
    /// Whether library spans are being recorded (one relaxed load — the entire cost of a
    /// disabled call site).
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns library-span recording on or off process-wide.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Starts a span timer, or `None` when recording is off — the pattern that keeps the
    /// disabled hot path free of clock reads:
    ///
    /// ```
    /// let g = surf_obs::global();
    /// let t = g.timer();
    /// // ... the measured work ...
    /// g.record(&g.ml_round_fit, t);
    /// ```
    pub fn timer(&self) -> Option<Instant> {
        if self.enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Completes a [`GlobalObs::timer`] span into `histogram` (no-op when the timer was
    /// never started).
    pub fn record(&self, histogram: &Histogram, started: Option<Instant>) {
        if let Some(started) = started {
            histogram.observe_duration(started.elapsed());
        }
    }
}

static GLOBAL: LazyLock<GlobalObs> = LazyLock::new(|| {
    let registry = MetricsRegistry::new();
    let bounds = metrics::default_duration_bounds();
    let ml_round_fit = registry.histogram(
        "surf_ml_round_fit_nanos",
        "Wall time of one GBRT boosting round (fit_round)",
        &bounds,
    );
    let ml_hist_build = registry.histogram(
        "surf_ml_hist_build_nanos",
        "Wall time of one per-node gradient histogram build",
        &bounds,
    );
    let ml_split_search = registry.histogram(
        "surf_ml_split_search_nanos",
        "Wall time of one per-node best-split search over built histograms",
        &bounds,
    );
    let optim_swarm_fitness = registry.histogram(
        "surf_optim_swarm_fitness_nanos",
        "Wall time of one whole-swarm fitness_batch evaluation",
        &bounds,
    );
    GlobalObs {
        registry,
        ml_round_fit,
        ml_hist_build,
        ml_split_search,
        optim_swarm_fitness,
        enabled: AtomicBool::new(true),
    }
});

/// The process-wide [`GlobalObs`] handle (created on first use; enabled by default —
/// the coarse spans it carries cost nanoseconds against work that costs microseconds).
pub fn global() -> &'static GlobalObs {
    &GLOBAL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_timer_respects_the_enable_flag() {
        let g = global();
        let before = g.enabled();
        g.set_enabled(false);
        assert!(g.timer().is_none());
        g.set_enabled(true);
        let t = g.timer();
        assert!(t.is_some());
        let count_before = g.ml_round_fit.snapshot().count;
        g.record(&g.ml_round_fit, t);
        g.record(&g.ml_round_fit, None);
        assert_eq!(g.ml_round_fit.snapshot().count, count_before + 1);
        g.set_enabled(before);
    }

    #[test]
    fn obs_config_round_trips_and_disabled_is_all_off() {
        let config = ObsConfig::default();
        let json = serde_json::to_string(&config).unwrap();
        let back: ObsConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, config);
        let off = ObsConfig::disabled();
        assert!(!off.metrics && !off.tracing);
        assert_eq!(off.trace_sample_every, 0);
    }
}
