//! Prometheus text exposition: a hand-rolled writer over [`Snapshot`]s, a parser, and a
//! well-formedness checker.
//!
//! The writer emits the version-0.0.4 text format: `# HELP` / `# TYPE` per family, one
//! sample line per series, histograms as cumulative `_bucket{le=...}` lines (ending in
//! `le="+Inf"`) plus `_sum` and `_count`. Instrument-backed values are exact integers —
//! the instruments count events and nanoseconds, so nothing is lost to float formatting;
//! snapshot-only float gauges render in shortest round-trip decimal form.
//!
//! [`parse`] and [`validate`] close the loop: the e2e suite and the `expocheck` bin
//! verify that a live `/metrics` body is well-formed (declared types, legal names,
//! escaped labels, cumulative buckets, `_count` = `+Inf`, `_sum` present), and the serve
//! benchmark reads bucket deltas back out of scraped text to attribute latency.

use crate::metrics::{SampleValue, Snapshot};

/// Renders a snapshot in Prometheus text exposition format. Rendering the same snapshot
/// twice is byte-identical (families and series are pre-sorted by [`Snapshot::sort`]).
pub fn render(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for family in &snapshot.families {
        out.push_str("# HELP ");
        out.push_str(&family.name);
        out.push(' ');
        out.push_str(&escape_help(&family.help));
        out.push('\n');
        out.push_str("# TYPE ");
        out.push_str(&family.name);
        out.push(' ');
        out.push_str(family.kind.type_keyword());
        out.push('\n');
        for series in &family.series {
            let labels: Vec<(&str, &str)> = series
                .labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            match &series.value {
                SampleValue::Counter(v) => {
                    sample_line(&mut out, &family.name, &labels, None, &v.to_string());
                }
                SampleValue::Gauge(v) => {
                    sample_line(&mut out, &family.name, &labels, None, &v.to_string());
                }
                SampleValue::GaugeF64(v) => {
                    sample_line(&mut out, &family.name, &labels, None, &format_f64(*v));
                }
                SampleValue::Histogram(h) => {
                    let bucket_name = format!("{}_bucket", family.name);
                    let mut cumulative = 0u64;
                    for (bound, count) in h.bounds.iter().zip(h.counts.iter()) {
                        cumulative += count;
                        sample_line(
                            &mut out,
                            &bucket_name,
                            &labels,
                            Some(&bound.to_string()),
                            &cumulative.to_string(),
                        );
                    }
                    cumulative += h.counts.last().copied().unwrap_or(0);
                    sample_line(
                        &mut out,
                        &bucket_name,
                        &labels,
                        Some("+Inf"),
                        &cumulative.to_string(),
                    );
                    sample_line(
                        &mut out,
                        &format!("{}_sum", family.name),
                        &labels,
                        None,
                        &h.sum.to_string(),
                    );
                    sample_line(
                        &mut out,
                        &format!("{}_count", family.name),
                        &labels,
                        None,
                        &cumulative.to_string(),
                    );
                }
            }
        }
    }
    out
}

/// Formats a float gauge value: Prometheus spells non-finite readings `+Inf`/`-Inf`/`NaN`;
/// finite ones use Rust's shortest round-trip decimal form.
fn format_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn sample_line(
    out: &mut String,
    name: &str,
    labels: &[(&str, &str)],
    le: Option<&str>,
    value: &str,
) {
    out.push_str(name);
    if !labels.is_empty() || le.is_some() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label(v));
            out.push('"');
        }
        if let Some(le) = le {
            if !first {
                out.push(',');
            }
            out.push_str("le=\"");
            out.push_str(le);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// Escapes a `# HELP` text: backslash and newline.
pub fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value: backslash, double quote and newline.
pub fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Full sample name as written (`surf_serve_queue_wait_nanos_bucket`, ...).
    pub name: String,
    /// Label pairs in wire order, values unescaped.
    pub labels: Vec<(String, String)>,
    /// The sample value (`+Inf` parses as [`f64::INFINITY`]).
    pub value: f64,
}

impl Sample {
    /// The value of the label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parses exposition text into its sample lines (comments skipped).
///
/// # Errors
///
/// A message naming the first malformed line (bad label syntax, unparseable value).
pub fn parse(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (index, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples.push(parse_sample(line).map_err(|e| format!("line {}: {e}", index + 1))?);
    }
    Ok(samples)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_and_labels, value_text) = match line.find('{') {
        Some(open) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| "unterminated label set".to_string())?;
            if close < open {
                return Err("malformed label braces".to_string());
            }
            (
                (&line[..open], Some(&line[open + 1..close])),
                line[close + 1..].trim(),
            )
        }
        None => {
            let mut parts = line.splitn(2, ' ');
            let name = parts.next().unwrap_or_default();
            let rest = parts.next().unwrap_or_default().trim();
            ((name, None), rest)
        }
    };
    let (name, label_text) = name_and_labels;
    let name = name.trim();
    if name.is_empty() {
        return Err("missing sample name".to_string());
    }
    let labels = match label_text {
        Some(text) => parse_labels(text)?,
        None => Vec::new(),
    };
    // The value may be followed by an optional timestamp; take the first token.
    let value_token = value_text.split_whitespace().next().unwrap_or_default();
    let value = parse_value(value_token)
        .ok_or_else(|| format!("unparseable sample value `{value_token}`"))?;
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

fn parse_value(token: &str) -> Option<f64> {
    match token {
        "+Inf" | "Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        other => other.parse().ok(),
    }
}

fn parse_labels(text: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = text.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| "label without `=`".to_string())?;
        let key = rest[..eq].trim().to_string();
        let after = rest[eq + 1..].trim_start();
        if !after.starts_with('"') {
            return Err(format!("label `{key}` value is not quoted"));
        }
        let mut value = String::new();
        let mut escaped = false;
        let mut consumed = None;
        for (i, ch) in after.char_indices().skip(1) {
            if escaped {
                match ch {
                    'n' => value.push('\n'),
                    '\\' => value.push('\\'),
                    '"' => value.push('"'),
                    other => value.push(other),
                }
                escaped = false;
            } else if ch == '\\' {
                escaped = true;
            } else if ch == '"' {
                consumed = Some(i + ch.len_utf8());
                break;
            } else {
                value.push(ch);
            }
        }
        let end = consumed.ok_or_else(|| format!("label `{key}` value is unterminated"))?;
        labels.push((key, value));
        rest = after[end..].trim_start();
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped.trim_start();
        } else if !rest.is_empty() {
            return Err("labels not comma-separated".to_string());
        }
    }
    Ok(labels)
}

fn legal_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn legal_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Checks exposition text for well-formedness: every sample under a `# TYPE`-declared
/// family, legal metric/label names, parseable values, no duplicate series, and — for
/// histograms — ascending cumulative buckets ending in `le="+Inf"`, with `_count` equal
/// to the `+Inf` bucket and `_sum` present.
///
/// # Errors
///
/// Every violation found, one message each (empty text is a violation too: a `/metrics`
/// endpoint that serves nothing is broken, not trivially valid).
pub fn validate(text: &str) -> Result<(), Vec<String>> {
    let mut errors: Vec<String> = Vec::new();
    // family name -> declared kind
    let mut declared: Vec<(String, String)> = Vec::new();
    for (index, line) in text.lines().enumerate() {
        let line_no = index + 1;
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().unwrap_or_default().to_string();
            let kind = parts.next().unwrap_or_default().to_string();
            if !legal_metric_name(&name) {
                errors.push(format!("line {line_no}: illegal family name `{name}`"));
            }
            if !matches!(
                kind.as_str(),
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                errors.push(format!("line {line_no}: unknown TYPE `{kind}`"));
            }
            if declared.iter().any(|(n, _)| *n == name) {
                errors.push(format!(
                    "line {line_no}: family `{name}` TYPE-declared twice"
                ));
            } else {
                declared.push((name, kind));
            }
        }
    }

    let samples = match parse(text) {
        Ok(samples) => samples,
        Err(e) => {
            errors.push(e);
            return Err(errors);
        }
    };
    if samples.is_empty() {
        errors.push("no samples".to_string());
    }

    let mut seen_series: Vec<String> = Vec::new();
    for sample in &samples {
        if !legal_metric_name(&sample.name) {
            errors.push(format!("illegal metric name `{}`", sample.name));
        }
        for (key, _) in &sample.labels {
            if !legal_label_name(key) {
                errors.push(format!("illegal label name `{key}` on `{}`", sample.name));
            }
        }
        if family_of(&sample.name, &declared).is_none() {
            errors.push(format!(
                "sample `{}` has no # TYPE declaration",
                sample.name
            ));
        }
        let mut identity = sample.name.clone();
        let mut labels = sample.labels.clone();
        labels.sort();
        for (k, v) in &labels {
            identity.push_str(&format!(",{k}={v}"));
        }
        if seen_series.contains(&identity) {
            errors.push(format!("duplicate series `{identity}`"));
        } else {
            seen_series.push(identity);
        }
    }

    for (family, kind) in &declared {
        if kind != "histogram" {
            continue;
        }
        validate_histogram(family, &samples, &mut errors);
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Maps a sample name back to its declared family (exact for counters/gauges; with the
/// `_bucket`/`_sum`/`_count` suffixes stripped for histograms).
fn family_of<'a>(name: &str, declared: &'a [(String, String)]) -> Option<&'a (String, String)> {
    declared.iter().find(|(family, kind)| {
        if family == name {
            return true;
        }
        if kind == "histogram" || kind == "summary" {
            for suffix in ["_bucket", "_sum", "_count"] {
                if let Some(stripped) = name.strip_suffix(suffix) {
                    if stripped == family {
                        return true;
                    }
                }
            }
        }
        false
    })
}

/// One histogram series group during validation: its non-`le` labels and its
/// `(le, cumulative count)` bucket points.
type BucketGroup = (Vec<(String, String)>, Vec<(f64, f64)>);

fn validate_histogram(family: &str, samples: &[Sample], errors: &mut Vec<String>) {
    let bucket_name = format!("{family}_bucket");
    // Group buckets by their non-`le` label sets.
    let mut groups: Vec<BucketGroup> = Vec::new();
    for sample in samples.iter().filter(|s| s.name == bucket_name) {
        let Some(le) = sample.label("le") else {
            errors.push(format!("`{bucket_name}` sample without an `le` label"));
            continue;
        };
        let Some(bound) = parse_value(le) else {
            errors.push(format!("`{bucket_name}` has unparseable le `{le}`"));
            continue;
        };
        let rest: Vec<(String, String)> = sample
            .labels
            .iter()
            .filter(|(k, _)| k != "le")
            .cloned()
            .collect();
        match groups.iter_mut().find(|(labels, _)| *labels == rest) {
            Some((_, buckets)) => buckets.push((bound, sample.value)),
            None => groups.push((rest, vec![(bound, sample.value)])),
        }
    }
    if groups.is_empty() {
        errors.push(format!("histogram `{family}` has no buckets"));
        return;
    }
    for (labels, buckets) in &groups {
        let tag = if labels.is_empty() {
            family.to_string()
        } else {
            format!("{family}{labels:?}")
        };
        let mut sorted = buckets.clone();
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut last = f64::NEG_INFINITY;
        for (_bound, cumulative) in &sorted {
            if *cumulative < last {
                errors.push(format!("histogram `{tag}` buckets are not cumulative"));
                break;
            }
            last = *cumulative;
        }
        let inf = sorted
            .iter()
            .find(|(bound, _)| bound.is_infinite())
            .map(|(_, v)| *v);
        let Some(inf) = inf else {
            errors.push(format!("histogram `{tag}` is missing the +Inf bucket"));
            continue;
        };
        let count = samples
            .iter()
            .find(|s| {
                s.name == format!("{family}_count") && {
                    let mut rest: Vec<(String, String)> = s.labels.clone();
                    rest.retain(|(k, _)| k != "le");
                    rest == *labels
                }
            })
            .map(|s| s.value);
        match count {
            Some(count) if count == inf => {}
            Some(count) => errors.push(format!(
                "histogram `{tag}`: _count {count} != +Inf bucket {inf}"
            )),
            None => errors.push(format!("histogram `{tag}` is missing _count")),
        }
        let has_sum = samples.iter().any(|s| {
            s.name == format!("{family}_sum") && {
                let mut rest: Vec<(String, String)> = s.labels.clone();
                rest.retain(|(k, _)| k != "le");
                rest == *labels
            }
        });
        if !has_sum {
            errors.push(format!("histogram `{tag}` is missing _sum"));
        }
    }
}

/// The cumulative `(le, count)` points of histogram `name` in `samples` (ascending `le`,
/// `+Inf` last). Empty when the histogram is absent.
pub fn bucket_points(samples: &[Sample], name: &str) -> Vec<(f64, f64)> {
    let bucket_name = format!("{name}_bucket");
    let mut points: Vec<(f64, f64)> = samples
        .iter()
        .filter(|s| s.name == bucket_name)
        .filter_map(|s| {
            let le = parse_value(s.label("le")?)?;
            Some((le, s.value))
        })
        .collect();
    points.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    points
}

/// Estimates quantile `q` (in `[0, 1]`) from cumulative `(le, count)` points, Prometheus
/// `histogram_quantile` style: find the bucket the rank falls in and interpolate linearly
/// inside it. Observations in the `+Inf` bucket clamp to the last finite bound. `None`
/// when there are no observations (or no points).
pub fn histogram_quantile(points: &[(f64, f64)], q: f64) -> Option<f64> {
    let total = points.last().map(|(_, count)| *count)?;
    if total <= 0.0 {
        return None;
    }
    let rank = q.clamp(0.0, 1.0) * total;
    let mut previous_bound = 0.0;
    let mut previous_count = 0.0;
    let mut last_finite = 0.0;
    for (bound, cumulative) in points {
        if bound.is_finite() {
            last_finite = *bound;
        }
        if *cumulative >= rank {
            if bound.is_infinite() {
                return Some(last_finite);
            }
            let in_bucket = cumulative - previous_count;
            if in_bucket <= 0.0 {
                return Some(*bound);
            }
            let fraction = (rank - previous_count) / in_bucket;
            return Some(previous_bound + (bound - previous_bound) * fraction);
        }
        previous_bound = *bound;
        previous_count = *cumulative;
    }
    Some(last_finite)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{MetricsRegistry, Snapshot};

    fn sample_snapshot() -> Snapshot {
        let registry = MetricsRegistry::new();
        registry
            .counter("surf_requests_total", "Requests handled")
            .add(7);
        registry
            .counter_with(
                "surf_route_total",
                "Per-route requests",
                &[("route", "/predict")],
            )
            .add(3);
        registry
            .gauge("surf_open_connections", "Open connections")
            .set(2);
        let h = registry.histogram("surf_wait_nanos", "Queue wait", &[10, 100]);
        for v in [5, 50, 500] {
            h.observe(v);
        }
        registry.snapshot()
    }

    #[test]
    fn render_is_pinned_and_deterministic() {
        let text = render(&sample_snapshot());
        let expected = "\
# HELP surf_open_connections Open connections
# TYPE surf_open_connections gauge
surf_open_connections 2
# HELP surf_requests_total Requests handled
# TYPE surf_requests_total counter
surf_requests_total 7
# HELP surf_route_total Per-route requests
# TYPE surf_route_total counter
surf_route_total{route=\"/predict\"} 3
# HELP surf_wait_nanos Queue wait
# TYPE surf_wait_nanos histogram
surf_wait_nanos_bucket{le=\"10\"} 1
surf_wait_nanos_bucket{le=\"100\"} 2
surf_wait_nanos_bucket{le=\"+Inf\"} 3
surf_wait_nanos_sum 555
surf_wait_nanos_count 3
";
        assert_eq!(text, expected);
        assert_eq!(render(&sample_snapshot()), text, "deterministic");
    }

    #[test]
    fn escaping_round_trips_through_the_parser() {
        let mut snapshot = Snapshot::new();
        snapshot.push_counter(
            "surf_esc_total",
            "help with \\ and\nnewline",
            &[("path", "a\"b\\c\nd")],
            1,
        );
        let text = render(&snapshot);
        assert!(text.contains("# HELP surf_esc_total help with \\\\ and\\nnewline"));
        let samples = parse(&text).unwrap();
        assert_eq!(samples[0].label("path").unwrap(), "a\"b\\c\nd");
        validate(&text).unwrap();
    }

    #[test]
    fn rendered_output_validates() {
        validate(&render(&sample_snapshot())).unwrap();
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        // No TYPE declaration.
        let errs = validate("surf_x_total 1\n").unwrap_err();
        assert!(errs.iter().any(|e| e.contains("no # TYPE")), "{errs:?}");
        // Non-cumulative buckets.
        let bad = "\
# TYPE surf_h histogram
surf_h_bucket{le=\"1\"} 5
surf_h_bucket{le=\"2\"} 3
surf_h_bucket{le=\"+Inf\"} 5
surf_h_sum 9
surf_h_count 5
";
        let errs = validate(bad).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("not cumulative")),
            "{errs:?}"
        );
        // _count disagreeing with +Inf.
        let bad = "\
# TYPE surf_h histogram
surf_h_bucket{le=\"+Inf\"} 5
surf_h_sum 9
surf_h_count 4
";
        let errs = validate(bad).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("!= +Inf")), "{errs:?}");
        // Missing +Inf bucket and empty text.
        let bad =
            "# TYPE surf_h histogram\nsurf_h_bucket{le=\"1\"} 1\nsurf_h_sum 1\nsurf_h_count 1\n";
        assert!(validate(bad).is_err());
        assert!(validate("").is_err());
        // Duplicate series.
        let bad = "# TYPE surf_c counter\nsurf_c 1\nsurf_c 2\n";
        let errs = validate(bad).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("duplicate")), "{errs:?}");
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        // 100 observations: 50 in (0,10], 40 in (10,100], 10 above.
        let points = vec![(10.0, 50.0), (100.0, 90.0), (f64::INFINITY, 100.0)];
        let p50 = histogram_quantile(&points, 0.5).unwrap();
        assert!((p50 - 10.0).abs() < 1e-9, "{p50}");
        let p90 = histogram_quantile(&points, 0.9).unwrap();
        assert!((p90 - 100.0).abs() < 1e-9, "{p90}");
        let p99 = histogram_quantile(&points, 0.99).unwrap();
        assert_eq!(p99, 100.0, "overflow clamps to last finite bound");
        assert_eq!(histogram_quantile(&[(1.0, 0.0)], 0.5), None);
        assert_eq!(histogram_quantile(&[], 0.5), None);
    }

    #[test]
    fn parser_handles_label_edge_cases() {
        let samples = parse("m{a=\"x,y\",b=\"{}\"} 4.5\n").unwrap();
        assert_eq!(samples[0].label("a").unwrap(), "x,y");
        assert_eq!(samples[0].label("b").unwrap(), "{}");
        assert_eq!(samples[0].value, 4.5);
        assert!(parse("m{a=\"unterminated} 1\n").is_err());
        assert!(parse("m{a=nope} 1\n").is_err());
        assert!(parse("m notanumber\n").is_err());
        let inf = parse("m_bucket{le=\"+Inf\"} 3\n").unwrap();
        assert_eq!(inf[0].label("le").unwrap(), "+Inf");
    }
}
