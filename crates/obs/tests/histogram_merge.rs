//! Property tests: histogram recording is deterministic under concurrency.
//!
//! The determinism claim the crate makes — integer atomic adds commute, so a snapshot
//! taken after concurrent recording depends only on the multiset of observations, never
//! on thread interleaving — is exactly the kind of claim that deserves a property test
//! rather than one example.

use std::sync::Arc;

use proptest::prelude::*;
use surf_obs::expo;
use surf_obs::metrics::{default_duration_bounds, Histogram, MetricsRegistry};

/// Splits `values` into `threads` chunks, records each chunk from its own thread, and
/// returns the snapshot.
fn record_concurrently(values: &[u64], threads: usize) -> surf_obs::metrics::HistogramSnapshot {
    let histogram = Arc::new(Histogram::new(&default_duration_bounds()));
    let chunk = values.len().div_ceil(threads).max(1);
    std::thread::scope(|scope| {
        for piece in values.chunks(chunk) {
            let histogram = Arc::clone(&histogram);
            scope.spawn(move || {
                for &value in piece {
                    histogram.observe(value);
                }
            });
        }
    });
    histogram.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn concurrent_recording_matches_sequential(
        pool in prop::collection::vec(0u64..50_000_000_000, 400),
        len in 1usize..400,
        threads in 1usize..8,
    ) {
        let values = &pool[..len];
        let sequential = {
            let h = Histogram::new(&default_duration_bounds());
            for &v in values {
                h.observe(v);
            }
            h.snapshot()
        };
        let concurrent = record_concurrently(values, threads);
        prop_assert_eq!(&concurrent.counts, &sequential.counts);
        prop_assert_eq!(concurrent.sum, sequential.sum);
        prop_assert_eq!(concurrent.count, sequential.count);
        prop_assert_eq!(concurrent.count as usize, values.len());
    }

    #[test]
    fn snapshot_count_always_equals_bucket_total(
        pool in prop::collection::vec(0u64..u64::MAX / 2, 200),
        len in 0usize..200,
    ) {
        let h = Histogram::new(&[1_000, 1_000_000, 1_000_000_000]);
        for &v in &pool[..len] {
            h.observe(v);
        }
        let snap = h.snapshot();
        let bucket_total: u64 = snap.counts.iter().sum();
        prop_assert_eq!(snap.count, bucket_total);
        prop_assert_eq!(snap.count as usize, len);
    }

    #[test]
    fn rendered_exposition_always_validates(
        observations in prop::collection::vec(0u64..10_000_000_000, 64),
        counter_value in 0u64..u64::MAX / 2,
        gauge_value in -1_000_000i64..1_000_000,
    ) {
        let registry = MetricsRegistry::new();
        registry.counter("surf_prop_total", "prop counter").add(counter_value);
        registry.gauge("surf_prop_gauge", "prop gauge").set(gauge_value);
        let h = registry.histogram("surf_prop_nanos", "prop histogram", &default_duration_bounds());
        for &v in &observations {
            h.observe(v);
        }
        let text = expo::render(&registry.snapshot());
        if let Err(errors) = expo::validate(&text) {
            panic!("rendered exposition failed validation: {errors:?}\n{text}");
        }
        // Parse back and check the counter survived the round trip exactly.
        let samples = expo::parse(&text).unwrap();
        let counter = samples
            .iter()
            .find(|s| s.name == "surf_prop_total")
            .expect("counter sample present");
        prop_assert_eq!(counter.value, counter_value as f64);
    }
}
