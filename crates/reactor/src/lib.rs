//! # surf-reactor
//!
//! A thin, dependency-free epoll readiness reactor: the foundation of the serving crate's
//! non-blocking event loop.
//!
//! The build environment has no route to a crates registry, so this is the workspace's own
//! minimal answer to `mio`: raw `epoll`/`eventfd` syscalls (declared directly against the
//! libc that `std` already links) wrapped in a small safe API —
//!
//! * [`Poller`] — an epoll instance: [`Poller::register`] file descriptors with a caller
//!   token and an interest set, [`Poller::wait`] for readiness [`Event`]s. Registration is
//!   **level-triggered**: an fd keeps reporting ready for as long as the condition holds,
//!   so a handler that does not exhaust a socket's buffer is woken again rather than
//!   silently stalled.
//! * [`Waker`] — a cross-thread wakeup channel built on `eventfd`: worker threads call
//!   [`Waker::wake`] to make a concurrent (or future) [`Poller::wait`] return, the event
//!   loop calls [`Waker::drain`] to re-arm it.
//!
//! ## The unsafe boundary
//!
//! This crate is the workspace's one vetted hole through `#![forbid(unsafe_code)]`,
//! registered in `analyze/unsafe_boundary.toml`. Every `unsafe` block is a direct FFI call
//! into the platform libc with a written `// SAFETY:` argument, and nothing unsafe escapes
//! the module: the public API hands out no raw pointers, every file descriptor this crate
//! creates is owned by a type that closes it on `Drop`, and descriptors registered by the
//! caller are only passed *by value* to the kernel, never dereferenced. The
//! `surf-analyze check` gate (unsafe-boundary rule) enforces the SAFETY-comment adjacency
//! on every CI run.
//!
//! Linux-only, deliberately: the serving subsystem targets the container the benches run
//! in. The blocking worker-pool transport in `surf-serve` remains the portable fallback.
#![warn(missing_docs)]
#![deny(clippy::undocumented_unsafe_blocks)]

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// Raw syscall surface. `std` already links the platform libc, so declaring the five
/// symbols the reactor needs is enough — no external crate required.
mod ffi {
    /// `struct epoll_event` with the kernel's ABI. On x86-64 the kernel declares it
    /// packed (no padding between the 32-bit mask and the 64-bit payload); elsewhere it
    /// uses natural alignment.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;

    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EFD_CLOEXEC: i32 = 0o2000000;
    pub const EFD_NONBLOCK: i32 = 0o4000;

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn eventfd(initval: u32, flags: i32) -> i32;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        pub fn close(fd: i32) -> i32;
    }
}

/// Largest number of readiness events one [`Poller::wait`] call can return. Level-triggered
/// registration makes this a latency knob, not a correctness one: descriptors still ready
/// beyond the batch are simply reported by the next call.
const WAIT_BATCH: usize = 256;

/// One readiness notification from [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the descriptor was registered with.
    pub token: u64,
    /// The descriptor is readable — or in an error/hang-up state a `read` will surface.
    pub readable: bool,
    /// The descriptor is writable — or in an error state a `write` will surface.
    pub writable: bool,
    /// The peer closed or the descriptor errored (`EPOLLHUP`/`EPOLLRDHUP`/`EPOLLERR`).
    pub hangup: bool,
}

/// An epoll instance: a set of registered file descriptors and a [`Poller::wait`] call
/// that blocks until at least one is ready (or a timeout, or a [`Waker`] fires).
///
/// The poller does not own the descriptors registered with it — callers keep their
/// `TcpListener`/`TcpStream` values and must [`Poller::deregister`] before closing them
/// (dropping a still-registered fd is not unsound, merely a source of stale events).
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Creates a new epoll instance (close-on-exec).
    ///
    /// # Errors
    ///
    /// The raw `epoll_create1` error, typically fd-limit exhaustion (`EMFILE`).
    pub fn new() -> io::Result<Poller> {
        // SAFETY: epoll_create1 reads no caller memory; it returns a fresh descriptor this
        // Poller now owns (closed in Drop) or -1 with errno set.
        let epfd = unsafe { ffi::epoll_create1(ffi::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn interest_bits(readable: bool, writable: bool) -> u32 {
        let mut bits = ffi::EPOLLRDHUP;
        if readable {
            bits |= ffi::EPOLLIN;
        }
        if writable {
            bits |= ffi::EPOLLOUT;
        }
        bits
    }

    fn ctl(&self, op: i32, fd: RawFd, event: Option<&mut ffi::EpollEvent>) -> io::Result<()> {
        let ptr = event.map_or(std::ptr::null_mut(), |e| e as *mut ffi::EpollEvent);
        // SAFETY: `ptr` is either null (only for EPOLL_CTL_DEL, which ignores it) or points
        // at a live, exclusively borrowed EpollEvent; the kernel copies it before the call
        // returns and retains no reference. `fd` is passed by value, never dereferenced.
        let rc = unsafe { ffi::epoll_ctl(self.epfd, op, fd, ptr) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }

    /// Registers a descriptor under `token` with the given interest set (level-triggered;
    /// peer hang-up is always watched).
    ///
    /// # Errors
    ///
    /// The raw `epoll_ctl` error — most notably `EEXIST` when the fd is already
    /// registered (use [`Poller::modify`]) and `EBADF` when it is closed.
    pub fn register(
        &self,
        fd: RawFd,
        token: u64,
        readable: bool,
        writable: bool,
    ) -> io::Result<()> {
        let mut event = ffi::EpollEvent {
            events: Self::interest_bits(readable, writable),
            data: token,
        };
        self.ctl(ffi::EPOLL_CTL_ADD, fd, Some(&mut event))
    }

    /// Replaces the interest set (and token) of an already registered descriptor.
    ///
    /// # Errors
    ///
    /// The raw `epoll_ctl` error — `ENOENT` when the fd was never registered, `EBADF`
    /// when it is closed.
    pub fn modify(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        let mut event = ffi::EpollEvent {
            events: Self::interest_bits(readable, writable),
            data: token,
        };
        self.ctl(ffi::EPOLL_CTL_MOD, fd, Some(&mut event))
    }

    /// Removes a descriptor from the interest set.
    ///
    /// # Errors
    ///
    /// The raw `epoll_ctl` error — `ENOENT` when the fd was not registered.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(ffi::EPOLL_CTL_DEL, fd, None)
    }

    /// Blocks until at least one registered descriptor is ready, the timeout elapses
    /// (`Ok` with an empty `events`), or a registered [`Waker`] fires. Ready events are
    /// appended to `events` after clearing it; at most [`WAIT_BATCH`] per call.
    /// `None` blocks indefinitely. Interrupted waits (`EINTR`) are retried internally.
    ///
    /// # Errors
    ///
    /// The raw `epoll_wait` error (after `EINTR` retry), e.g. `EBADF` if the poller's own
    /// descriptor was externally closed.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => {
                let ms = d.as_millis().min(i32::MAX as u128) as i32;
                // Round sub-millisecond timeouts up so a short wait is a wait, not a spin.
                if ms == 0 && !d.is_zero() {
                    1
                } else {
                    ms
                }
            }
        };
        let mut raw = [ffi::EpollEvent { events: 0, data: 0 }; WAIT_BATCH];
        loop {
            // SAFETY: `raw` is a live, properly initialized array of WAIT_BATCH
            // epoll_event slots on this stack frame; the kernel writes at most
            // WAIT_BATCH entries and we read back only the `n` it reports.
            let n = unsafe {
                ffi::epoll_wait(self.epfd, raw.as_mut_ptr(), WAIT_BATCH as i32, timeout_ms)
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            }
            for slot in raw.iter().take(n as usize) {
                // Field reads copy out of the (possibly packed) struct by value.
                let bits = slot.events;
                let hangup = bits & (ffi::EPOLLHUP | ffi::EPOLLRDHUP | ffi::EPOLLERR) != 0;
                events.push(Event {
                    token: slot.data,
                    // Error/hang-up states are folded into readability/writability so a
                    // state machine that only checks those still observes the failure via
                    // its next read()/write() instead of spinning on a dead socket.
                    readable: bits
                        & (ffi::EPOLLIN | ffi::EPOLLRDHUP | ffi::EPOLLHUP | ffi::EPOLLERR)
                        != 0,
                    writable: bits & (ffi::EPOLLOUT | ffi::EPOLLERR | ffi::EPOLLHUP) != 0,
                    hangup,
                });
            }
            return Ok(n as usize);
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: `epfd` is the descriptor epoll_create1 handed this Poller; it is closed
        // exactly once (Drop runs once) and never exposed for the caller to close first.
        let _ = unsafe { ffi::close(self.epfd) };
    }
}

/// A cross-thread wakeup channel for a [`Poller`], built on `eventfd`.
///
/// Register [`Waker::fd`] with the poller under a reserved token; any thread may then call
/// [`Waker::wake`] to make the current (or next) [`Poller::wait`] return with that token.
/// The event loop must call [`Waker::drain`] when it sees the token — the registration is
/// level-triggered, so an undrained waker would wake every subsequent wait.
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// Creates a new waker (non-blocking, close-on-exec).
    ///
    /// # Errors
    ///
    /// The raw `eventfd` error, typically fd-limit exhaustion (`EMFILE`).
    pub fn new() -> io::Result<Waker> {
        // SAFETY: eventfd reads no caller memory; it returns a fresh descriptor this
        // Waker now owns (closed in Drop) or -1 with errno set.
        let fd = unsafe { ffi::eventfd(0, ffi::EFD_CLOEXEC | ffi::EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Waker { fd })
    }

    /// The descriptor to register with the poller (readable whenever a wake is pending).
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Signals the poller. Wakes the in-progress `wait` if one is blocked, otherwise makes
    /// the next `wait` return immediately. Saturation (`EAGAIN` on a counter already at
    /// max) is success: a wake is by definition pending.
    ///
    /// # Errors
    ///
    /// The raw `write` error for anything other than saturation — e.g. `EBADF` if the
    /// descriptor was externally closed.
    pub fn wake(&self) -> io::Result<()> {
        let one: u64 = 1;
        // SAFETY: the buffer points at 8 live bytes (a u64 on this stack frame) for the
        // duration of the call; eventfd writes consume exactly 8 bytes.
        let rc = unsafe { ffi::write(self.fd, (&one as *const u64).cast(), 8) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::WouldBlock {
                return Ok(());
            }
            return Err(err);
        }
        Ok(())
    }

    /// Consumes all pending wakes, re-arming the waker. Call on every wait that reports the
    /// waker's token. A drain with no pending wake is a harmless no-op (the fd is
    /// non-blocking).
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // SAFETY: the buffer is 8 live bytes on this stack frame; an eventfd read fills
        // exactly 8 bytes (or fails with EAGAIN when no wake is pending, which is fine).
        let _ = unsafe { ffi::read(self.fd, buf.as_mut_ptr(), 8) };
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: `fd` is the descriptor eventfd handed this Waker; it is closed exactly
        // once, and `fd()` only lends the value for registration, never ownership.
        let _ = unsafe { ffi::close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Instant;

    #[test]
    fn timeout_expires_with_no_events() {
        let poller = Poller::new().unwrap();
        let mut events = Vec::new();
        let started = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert_eq!(n, 0);
        assert!(events.is_empty());
        assert!(started.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn listener_becomes_readable_on_connect() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poller
            .register(listener.as_raw_fd(), 7, true, false)
            .unwrap();

        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert_eq!(n, 0, "no pending connection yet");

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        assert!(!events[0].hangup);
        poller.deregister(listener.as_raw_fd()).unwrap();
    }

    #[test]
    fn level_triggered_events_repeat_until_consumed() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        client.write_all(b"ping").unwrap();

        poller
            .register(server_side.as_raw_fd(), 1, true, false)
            .unwrap();
        let mut events = Vec::new();
        for _ in 0..2 {
            // The 4 bytes are never read, so both waits must report readable.
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(n, 1);
            assert!(events[0].readable);
        }
    }

    #[test]
    fn modify_switches_interest_sets() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        client.write_all(b"x").unwrap();

        // Write-only interest: the pending readable byte must not surface.
        poller
            .register(server_side.as_raw_fd(), 3, false, true)
            .unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().all(|e| e.token == 3 && e.writable));

        poller
            .modify(server_side.as_raw_fd(), 4, true, false)
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 4);
        assert!(events[0].readable);
    }

    #[test]
    fn peer_close_reports_hangup() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        poller
            .register(server_side.as_raw_fd(), 9, true, false)
            .unwrap();
        drop(client);
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events[0].hangup);
        assert!(events[0].readable, "EOF is surfaced through read()");
    }

    #[test]
    fn waker_wakes_a_blocked_wait_from_another_thread() {
        let poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        poller.register(waker.fd(), u64::MAX, true, false).unwrap();

        let remote = std::sync::Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            remote.wake().unwrap();
        });

        let mut events = Vec::new();
        let started = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        handle.join().unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, u64::MAX);
        assert!(started.elapsed() < Duration::from_secs(5));

        // Undrained, the level-triggered waker keeps firing; drained, it goes quiet.
        poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert_eq!(events.len(), 1, "undrained waker stays ready");
        waker.drain();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert_eq!(n, 0, "drained waker is re-armed");
    }

    #[test]
    fn repeated_wakes_coalesce_into_one_drain() {
        let waker = Waker::new().unwrap();
        for _ in 0..1000 {
            waker.wake().unwrap();
        }
        waker.drain();
        let poller = Poller::new().unwrap();
        poller.register(waker.fd(), 0, true, false).unwrap();
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert_eq!(n, 0, "one drain consumes any number of wakes");
    }
}
