//! Crime hot-spot identification — the paper's Crimes use case (Section V-C, Fig. 5).
//!
//! ```bash
//! cargo run --release --example crime_hotspots
//! ```
//!
//! A city's worth of crime incidents is simulated as a spatial point process with several
//! Gaussian hot-spots. The analyst asks for regions whose incident count exceeds the third
//! quartile of a random region sample (`y_R = Q3`), exactly as in the paper. SuRF answers
//! from its surrogate; the example then verifies every proposed region against the *true*
//! incident counts and renders a coarse density map with the proposals overlaid.

use surf::prelude::*;

fn main() {
    // 1. Simulated city: 40,000 incidents, 4 hot-spots.
    let crimes =
        CrimesDataset::generate(&CrimesSpec::default().with_incidents(40_000).with_seed(9));
    println!(
        "crimes dataset: {} incidents over the unit square, {} planted hot-spots",
        crimes.dataset.len(),
        crimes.hotspot_centers.len()
    );

    // 2. Threshold: third quartile of the incident count over 400 random probe regions.
    let q3 = crimes.third_quartile_threshold(400, 0.06, 11);
    println!("threshold y_R = Q3 of a random region sample = {q3:.0} incidents");

    // 3. Train SuRF once and mine.
    let config = SurfConfig::builder()
        .statistic(Statistic::Count)
        .threshold(Threshold::above(q3))
        .objective(Objective::log(4.0))
        .training_queries(2_500)
        .gbrt(GbrtParams::quick())
        .gso(GsoParams::paper_default().with_seed(9))
        .length_fractions(0.04, 0.3)
        .kde_sample(1_000)
        .seed(9)
        .build();
    let surf = Surf::fit(&crimes.dataset, &config).expect("training succeeds");
    let outcome = surf.mine();
    println!(
        "SuRF proposed {} regions in {:.2?} (training took {:.2?})",
        outcome.regions.len(),
        outcome.mining_time,
        surf.training_report().training_time
    );

    // 4. Validity check against the true function — the paper reports 100 % here.
    let validity = validity_fraction(
        &crimes.dataset,
        Statistic::Count,
        &Threshold::above(q3),
        &outcome.region_list(),
        0.0,
    )
    .expect("valid regions");
    println!(
        "{:.0}% of the proposed regions exceed y_R under the true incident counts",
        100.0 * validity
    );

    // 5. Coarse ASCII density map (16 x 16) with proposed region centres marked 'X'.
    println!("\nincident density (darker = more incidents), X = proposed region centre:");
    let grid = 16usize;
    let mut counts = vec![vec![0usize; grid]; grid];
    let xs = crimes.dataset.column(0).unwrap();
    let ys = crimes.dataset.column(1).unwrap();
    for (&x, &y) in xs.iter().zip(ys) {
        let i = ((y * grid as f64) as usize).min(grid - 1);
        let j = ((x * grid as f64) as usize).min(grid - 1);
        counts[i][j] += 1;
    }
    let max = counts.iter().flatten().copied().max().unwrap_or(1).max(1);
    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let mut marks = vec![vec![false; grid]; grid];
    for mined in &outcome.regions {
        let c = mined.region.center();
        let i = ((c[1] * grid as f64) as usize).min(grid - 1);
        let j = ((c[0] * grid as f64) as usize).min(grid - 1);
        marks[i][j] = true;
    }
    for i in (0..grid).rev() {
        let mut line = String::with_capacity(grid);
        for j in 0..grid {
            if marks[i][j] {
                line.push('X');
            } else {
                let shade = (counts[i][j] * (shades.len() - 1)) / max;
                line.push(shades[shade]);
            }
        }
        println!("  {line}");
    }

    // 6. How close are the proposals to the planted hot-spots?
    let matched = match_regions(&outcome.region_list(), &crimes.hotspot_regions);
    println!(
        "\nmean IoU against the planted hot-spot neighbourhoods: {:.3}",
        matched.mean_iou
    );
}
