//! Quickstart: mine dense regions of a synthetic dataset with SuRF.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! The example generates a 2-D dataset with three planted dense ground-truth regions, trains
//! a gradient-boosted surrogate on past region evaluations, and asks SuRF for every region
//! containing more than 600 points. It then scores the proposals against the ground truth
//! with the Intersection-over-Union metric the paper uses.

use surf::prelude::*;

fn main() {
    // 1. A synthetic dataset with k = 3 dense ground-truth regions in d = 2 dimensions.
    let spec = SyntheticSpec::density(2, 3)
        .with_points(9_000)
        .with_points_per_region(1_400)
        .with_seed(42);
    let synthetic = SyntheticDataset::generate(&spec);
    println!(
        "dataset: {} points, {} dimensions, {} ground-truth regions",
        synthetic.dataset.len(),
        synthetic.dataset.dimensions(),
        synthetic.ground_truth.len()
    );

    // 2. Configure SuRF: COUNT statistic, threshold y_R = 600 (regions with more than 600
    //    points are interesting), log objective with c = 4 as in the paper.
    let config = SurfConfig::builder()
        .statistic(Statistic::Count)
        .threshold(Threshold::above(600.0))
        .objective(Objective::log(4.0))
        .training_queries(2_000)
        .gbrt(GbrtParams::quick())
        .gso(GsoParams::paper_default().with_seed(42))
        .kde_sample(800)
        .seed(42)
        .build();

    // 3. Train the surrogate once (this is the only step that touches the data)...
    let surf = Surf::fit(&synthetic.dataset, &config).expect("surrogate training succeeds");
    let report = surf.training_report();
    println!(
        "surrogate: trained on {} past region evaluations in {:.2?} (hold-out RMSE {:.1})",
        report.training_examples, report.training_time, report.holdout_rmse
    );

    // 4. ...then mine. Mining never touches the data, only the surrogate.
    let outcome = surf.mine();
    println!(
        "mining: {} regions in {:.2?} ({} surrogate evaluations, {:.0}% of the swarm on valid regions)",
        outcome.regions.len(),
        outcome.mining_time,
        outcome.surrogate_evaluations,
        100.0 * outcome.swarm_valid_fraction
    );

    for (i, mined) in outcome.regions.iter().take(6).enumerate() {
        println!(
            "  region {}: center = {:?}, half lengths = {:?}, predicted count = {:.0}",
            i + 1,
            rounded(mined.region.center()),
            rounded(mined.region.half_lengths()),
            mined.predicted_value
        );
    }

    // 5. Score against the ground truth (the paper's Fig. 3 metric) and against the true
    //    statistic (the paper's Fig. 5 validity check).
    let matched = match_regions(&outcome.region_list(), &synthetic.ground_truth);
    println!("mean IoU against ground truth: {:.3}", matched.mean_iou);
    let validity = validity_fraction(
        &synthetic.dataset,
        Statistic::Count,
        &Threshold::above(600.0),
        &outcome.region_list(),
        0.0,
    )
    .expect("regions have the dataset's dimensionality");
    println!(
        "{:.0}% of the proposed regions satisfy the constraint under the true statistic",
        100.0 * validity
    );
}

fn rounded(values: &[f64]) -> Vec<f64> {
    values
        .iter()
        .map(|v| (v * 1000.0).round() / 1000.0)
        .collect()
}
