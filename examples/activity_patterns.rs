//! Activity-pattern discovery — the paper's Human-Activity use case (Section V-C).
//!
//! ```bash
//! cargo run --release --example activity_patterns
//! ```
//!
//! Tri-axial accelerometer readings are simulated with per-activity signatures. The analyst
//! asks for accelerometer regions where the ratio of the activity *standing* exceeds 0.3 — a
//! rare event (the paper reports an empirical exceedance probability of just 0.0035). The
//! mined regions demarcate interpretable classification boundaries in sensor space.

use surf::prelude::*;

fn main() {
    // 1. Simulated activity tracker stream.
    let activity =
        ActivityDataset::generate(&ActivitySpec::default().with_samples(30_000).with_seed(3));
    let labels = activity.dataset.labels().expect("activity labels present");
    let stand_fraction = labels
        .iter()
        .filter(|&&l| l == Activity::Standing.label())
        .count() as f64
        / labels.len() as f64;
    println!(
        "activity dataset: {} samples over (accel_x, accel_y, accel_z); standing makes up {:.1}% of samples",
        activity.dataset.len(),
        100.0 * stand_fraction
    );

    // 2. How hard is the request? Empirical probability that a random region reaches the
    //    requested ratio (the paper reports 1 − F̂_Y(0.3) = 0.0035).
    let threshold = 0.3;
    let exceedance = activity.exceedance_probability(Activity::Standing, threshold, 2_000, 0.1, 5);
    println!(
        "P(ratio of standing > {threshold}) over random regions ≈ {exceedance:.4} — a rare event"
    );

    // 3. Train SuRF on the ratio statistic and mine.
    let statistic = activity.ratio_statistic(Activity::Standing);
    let config = SurfConfig::builder()
        .statistic(statistic)
        .threshold(Threshold::above(threshold))
        .objective(Objective::log(2.0))
        .training_queries(2_500)
        .workload_coverage(0.03, 0.2)
        .gbrt(GbrtParams::quick())
        .gso(GsoParams::dimension_adaptive(6).with_seed(3))
        .kde_sample(1_000)
        .seed(3)
        .build();
    let surf = Surf::fit(&activity.dataset, &config).expect("training succeeds");
    let outcome = surf.mine();
    println!(
        "SuRF proposed {} regions in {:.2?} (swarm valid fraction {:.0}%)",
        outcome.regions.len(),
        outcome.mining_time,
        100.0 * outcome.swarm_valid_fraction
    );

    // 4. Inspect the proposals: their true stand ratio and the classification boundary they
    //    suggest.
    let mut confirmed = 0usize;
    for (i, mined) in outcome.regions.iter().take(8).enumerate() {
        let true_ratio = statistic
            .evaluate_or(&activity.dataset, &mined.region, 0.0)
            .expect("region has the dataset's dimensionality");
        if true_ratio > threshold {
            confirmed += 1;
        }
        let lower = mined.region.lower();
        let upper = mined.region.upper();
        println!(
            "  region {}: accel_x in [{:.2}, {:.2}], accel_y in [{:.2}, {:.2}], accel_z in [{:.2}, {:.2}] — predicted ratio {:.2}, true ratio {:.2}",
            i + 1,
            lower[0], upper[0], lower[1], upper[1], lower[2], upper[2],
            mined.predicted_value,
            true_ratio
        );
    }
    if !outcome.regions.is_empty() {
        println!(
            "{}/{} inspected regions exceed the requested ratio under the true data",
            confirmed,
            outcome.regions.len().min(8)
        );
    } else {
        println!("no regions found — try lowering the threshold or enlarging the workload");
    }

    // 5. The standing signature the generator planted, for reference.
    println!("\n(planted standing signature is centred near accel = (0.80, 0.20, 0.75))");
}
