//! Serving walk-through: train → save → load → serve → query.
//!
//! ```bash
//! cargo run --release --example serve
//! ```
//!
//! The example trains a surrogate on a synthetic dataset, persists it as a versioned JSON
//! artifact (`ModelArtifact::save_json`), reloads it exactly as a fresh serving process
//! would (`ModelArtifact::load_json`), registers it into a `ModelRegistry` and serves it on
//! an ephemeral port with the worker-pool HTTP API. It then queries `/predict` twice (the
//! second answer comes from the prediction cache), mines regions over HTTP via `/mine`, and
//! prints the `/stats` counters before shutting the server down.

use std::sync::Arc;

use surf::prelude::*;
use surf::serve::http::http_request;
use surf::serve::routes::{PredictRequest, RegionSpec};

fn main() {
    // 1. Train a surrogate on a synthetic dataset with one planted dense region.
    let spec = SyntheticSpec::density(2, 1)
        .with_points(6_000)
        .with_points_per_region(1_500)
        .with_seed(42);
    let synthetic = SyntheticDataset::generate(&spec);
    let config = SurfConfig::builder()
        .statistic(Statistic::Count)
        .threshold(Threshold::above(800.0))
        .training_queries(1_200)
        .gbrt(GbrtParams::quick())
        .gso(GsoParams::quick().with_seed(42))
        .kde_sample(500)
        .seed(42)
        .build();
    let engine = Surf::fit(&synthetic.dataset, &config).expect("training succeeds");
    println!(
        "trained surrogate: {} workload queries, holdout RMSE {:.2}",
        engine.workload_size(),
        engine.training_report().holdout_rmse
    );

    // 2. Persist the fitted engine as a versioned artifact and reload it — this is exactly
    //    what a separate serving process would do, and predictions are bit-identical.
    let path = std::env::temp_dir().join("surf_serve_example.json");
    ModelArtifact::from_engine("hotspots", &engine)
        .save_json(&path)
        .expect("artifact saves");
    let artifact = ModelArtifact::load_json(&path).expect("artifact loads");
    std::fs::remove_file(&path).ok();
    println!(
        "artifact round trip: schema v{}, model `{}`, {} training examples",
        artifact.schema_version, artifact.name, artifact.metadata.workload_size
    );

    // 3. Register the model and serve it on an ephemeral port.
    let registry = Arc::new(ModelRegistry::new());
    registry.register(artifact).expect("model registers");
    let handle = surf::serve::serve(
        registry,
        &ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = handle.addr().to_string();
    println!("serving on http://{addr} with 4 workers");

    // 4. Query /predict twice: the second answer is a cache hit.
    let body = serde_json::to_string(&PredictRequest {
        model: "hotspots".to_string(),
        region: Some(RegionSpec {
            center: vec![0.5, 0.5],
            half_lengths: vec![0.1, 0.1],
        }),
        regions: None,
    })
    .unwrap();
    for round in 1..=2 {
        let (status, response) =
            http_request(&addr, "POST", "/predict", Some(&body)).expect("predict succeeds");
        println!("predict round {round}: HTTP {status} {response}");
    }

    // 5. Mine regions over HTTP — no data access happens anywhere in the serving path.
    let (status, response) = http_request(
        &addr,
        "POST",
        "/mine",
        Some("{\"model\": \"hotspots\", \"top\": 3}"),
    )
    .expect("mine succeeds");
    println!("mine: HTTP {status}, {} bytes of outcome", response.len());

    // 6. Inspect the counters and shut down cleanly.
    let (_, stats) = http_request(&addr, "GET", "/stats", None).expect("stats succeed");
    println!("stats: {stats}");
    handle.shutdown();
    println!("server drained and shut down");
}
