//! Head-to-head comparison of SuRF against the paper's baselines on one synthetic dataset.
//!
//! ```bash
//! cargo run --release --example method_comparison
//! ```
//!
//! Runs SuRF, the Naive exhaustive baseline, GSO driven by the true function (f+GlowWorm) and
//! PRIM on the same aggregate-statistic dataset, reporting mining time and IoU against the
//! planted ground truth — a one-dataset slice of the paper's Figure 3 and Table I.

use std::time::Duration;

use surf::prelude::*;

fn main() {
    // An aggregate-statistic dataset: regions where the average measure value exceeds 2.
    let synthetic = SyntheticDataset::generate(
        &SyntheticSpec::aggregate(2, 1)
            .with_points(8_000)
            .with_seed(77),
    );
    println!(
        "dataset: {} points, statistic = average measure, threshold y_R = {}",
        synthetic.dataset.len(),
        synthetic.threshold
    );

    let config = ComparisonConfig {
        training_queries: 2_000,
        ..ComparisonConfig::quick()
    }
    .with_seed(77)
    .with_naive_time_limit(Duration::from_secs(30));
    let harness = MethodComparison::new(config);

    println!(
        "\n{:<12} {:>10} {:>12} {:>10} {:>10}",
        "method", "regions", "mine time", "IoU", "coverage"
    );
    for method in Method::ALL {
        match harness.run_on_synthetic(method, &synthetic) {
            Ok(run) => {
                let iou = run.mean_iou(&synthetic.ground_truth);
                println!(
                    "{:<12} {:>10} {:>12} {:>10.3} {:>9.0}%",
                    method.name(),
                    run.regions.len(),
                    format!("{:.2?}", run.mining_time),
                    iou,
                    100.0 * run.coverage
                );
                if method == Method::Surf {
                    println!(
                        "{:<12} {:>10} {:>12}   (one-off surrogate training)",
                        "",
                        "",
                        format!("{:.2?}", run.training_time)
                    );
                }
            }
            Err(e) => println!("{:<12} failed: {e}", method.name()),
        }
    }

    println!(
        "\nExpected shape (paper, Fig. 3 / Table I): SuRF ≈ f+GlowWorm in accuracy at a fraction \
         of the cost; PRIM competitive on aggregate statistics; Naive accurate but slow as d and N grow."
    );
}
