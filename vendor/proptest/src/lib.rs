//! Vendored, dependency-free replacement for the `proptest` crate.
//!
//! The build environment has no network access to a crates registry, so the workspace vendors
//! the proptest surface its property tests use: the [`proptest!`] macro, the [`Strategy`]
//! trait with `prop_map`/`prop_flat_map`, range and tuple strategies, [`collection::vec`],
//! [`bool::ANY`] and [`test_runner::Config`]. Sampling is a deterministic seeded sweep; there
//! is no shrinking — a failing case reports the sampled values via the assertion message.
#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of type `Value`.
    pub trait Strategy {
        /// The type of the generated values.
        type Value;

        /// Samples one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// A strategy that always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {
            $(
                impl Strategy for Range<$t> {
                    type Value = $t;

                    fn sample(&self, rng: &mut TestRng) -> $t {
                        rng.rng.random_range(self.clone())
                    }
                }
                impl Strategy for RangeInclusive<$t> {
                    type Value = $t;

                    fn sample(&self, rng: &mut TestRng) -> $t {
                        rng.rng.random_range(self.clone())
                    }
                }
            )*
        };
    }

    impl_range_strategy!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $index:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$index.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

pub mod test_runner {
    //! Test configuration and the deterministic RNG driving strategy sampling.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Configuration of a property-test run.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of sampled cases per property.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config::with_cases(256)
        }
    }

    impl Config {
        /// A configuration running `cases` sampled cases. The `PROPTEST_CASES` environment
        /// variable caps the count further, so CI can bound the suite's runtime.
        pub fn with_cases(cases: u32) -> Self {
            let cases = match std::env::var("PROPTEST_CASES") {
                Ok(v) => match v.parse::<u32>() {
                    Ok(env_cases) => cases.min(env_cases.max(1)),
                    Err(_) => cases,
                },
                Err(_) => cases,
            };
            Config { cases }
        }
    }

    /// Deterministic RNG driving strategy sampling: every run samples the same sweep.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        pub(crate) rng: StdRng,
    }

    impl TestRng {
        /// The deterministic generator used by the [`crate::proptest!`] macro.
        pub fn deterministic() -> Self {
            TestRng {
                rng: StdRng::seed_from_u64(0x50524F50u64),
            }
        }
    }
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy for `Vec`s of exactly `len` elements sampled from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod bool {
    //! Strategies for `bool`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Uniformly samples `true`/`false`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The fair-coin strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.rng.random()
        }
    }
}

/// Path-compatible access to strategy modules (`prop::collection::vec`, `prop::bool::ANY`).
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
}

/// Everything property tests usually import.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property; failures abort the test with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Declares property tests: each `fn name(pattern in strategy, ...) { body }` becomes a
/// `#[test]` running `body` over a deterministic sweep of sampled inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic();
                for _case in 0..config.cases {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn config_caps_cases_via_env() {
        // Without the env var set, with_cases is the identity.
        if std::env::var("PROPTEST_CASES").is_err() {
            assert_eq!(ProptestConfig::with_cases(64).cases, 64);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_collections_sample_in_bounds(
            x in 0.0f64..1.0,
            n in 1usize..=5,
            flag in prop::bool::ANY,
        ) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..=5).contains(&n));
            let v = Strategy::sample(
                &prop::collection::vec(0i32..10, n),
                &mut crate::test_runner::TestRng::deterministic(),
            );
            prop_assert_eq!(v.len(), n);
            let _ = flag;
        }

        #[test]
        fn map_and_flat_map_compose((a, b) in (1u32..5).prop_flat_map(|n| {
            ((n..n + 1).prop_map(|x| x * 2), 0u32..1)
        })) {
            prop_assert!((2..10).contains(&a));
            prop_assert_eq!(b, 0);
            prop_assert_ne!(a, 1);
        }
    }
}
