//! Vendored, dependency-free replacement for the `criterion` crate.
//!
//! The build environment has no network access to a crates registry, so the workspace vendors
//! the criterion API surface its benches use: [`Criterion::benchmark_group`],
//! [`Criterion::bench_function`], [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`] and
//! the [`criterion_group!`]/[`criterion_main!`] macros. Instead of criterion's statistical
//! machinery it times a fixed number of iterations and prints the mean — enough for relative
//! comparisons and for `cargo bench --no-run` to gate compilation in CI.
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Accepted for API compatibility; command-line filtering is not implemented.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Times a single benchmark function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        run_benchmark(name, self.sample_size, f);
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the harness times a fixed sample count instead.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Times a benchmark in this group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(&mut self, id: I, f: F) {
        let id = id.into_benchmark_id();
        run_benchmark(&format!("{}/{}", self.name, id.id), self.sample_size, f);
    }

    /// Times a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_benchmark(&format!("{}/{}", self.name, id.id), self.sample_size, |b| {
            f(b, input)
        });
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a [`BenchmarkId`], so group benches accept both ids and plain names.
pub trait IntoBenchmarkId {
    /// Converts `self` into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
#[derive(Debug, Default)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up call.
        black_box(routine());
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher::default();
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    if bencher.iterations > 0 {
        let mean = bencher.elapsed / bencher.iterations as u32;
        println!(
            "bench: {name:<50} {mean:>12.2?}/iter ({} iters)",
            bencher.iterations
        );
    }
}

/// Declares a function running a list of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given benchmark groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
