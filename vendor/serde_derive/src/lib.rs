//! Vendored, dependency-free replacement for the `serde_derive` proc-macro crate.
//!
//! The build environment has no network access to a crates registry, so the workspace vendors
//! the small serde surface it actually uses (see `vendor/serde`). This crate derives that
//! surface: `Serialize` maps a type onto the [`serde::Value`] JSON-like object model and
//! `Deserialize` reads it back out (the exact inverse encoding). Supported shapes —
//! non-generic structs (named, tuple, unit) and enums (unit, tuple and struct variants) —
//! cover every derive in the workspace.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` by mapping the type onto `serde::Value`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let pairs = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::serialize(&self.{f}))"
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Object(::std::vec![{pairs}])")
        }
        Shape::TupleStruct(arity) => {
            let items = (0..*arity)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Array(::std::vec![{items}])")
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let name = &item.name;
            let arms = variants
                .iter()
                .map(|v| variant_arm(name, v))
                .collect::<Vec<_>>()
                .join("\n");
            format!("match self {{ {arms} }}")
        }
    };
    let name = &item.name;
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` by reading the type back out of `serde::Value` — the exact
/// inverse of the `Serialize` expansion above.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(entries, \"{name}\", \"{f}\")?,"))
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "let entries = ::serde::expect_object(value, \"{name}\")?;\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Shape::TupleStruct(arity) => {
            let items = (0..*arity)
                .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "match value {{\n\
                     ::serde::Value::Array(items) if items.len() == {arity} => \
                         ::std::result::Result::Ok({name}({items})),\n\
                     other => ::std::result::Result::Err(::serde::DeError::expected(\
                         \"array of length {arity} for `{name}`\", other)),\n\
                 }}"
            )
        }
        Shape::UnitStruct => format!(
            "match value {{\n\
                 ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
                 other => ::std::result::Result::Err(::serde::DeError::expected(\
                     \"null for unit struct `{name}`\", other)),\n\
             }}"
        ),
        Shape::Enum(variants) => {
            let unit_arms = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),",
                        vname = v.name
                    )
                })
                .collect::<Vec<_>>()
                .join("\n");
            let payload_arms = variants
                .iter()
                .filter(|v| !matches!(v.shape, VariantShape::Unit))
                .map(|v| variant_deserialize_arm(name, v))
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "match value {{\n\
                     ::serde::Value::String(s) => match s.as_str() {{\n\
                         {unit_arms}\n\
                         other => ::std::result::Result::Err(::serde::DeError::custom(\
                             ::std::format!(\"unknown variant `{{other}}` of `{name}`\"))),\n\
                     }},\n\
                     ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                         let (key, payload) = &entries[0];\n\
                         match key.as_str() {{\n\
                             {payload_arms}\n\
                             other => ::std::result::Result::Err(::serde::DeError::custom(\
                                 ::std::format!(\"unknown variant `{{other}}` of `{name}`\"))),\n\
                         }}\n\
                     }}\n\
                     other => ::std::result::Result::Err(::serde::DeError::expected(\
                         \"enum `{name}` representation\", other)),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

/// One `match key.as_str()` arm decoding a data-carrying enum variant from its payload.
fn variant_deserialize_arm(type_name: &str, variant: &Variant) -> String {
    let vname = &variant.name;
    match &variant.shape {
        VariantShape::Unit => unreachable!("unit variants are matched as strings"),
        VariantShape::Tuple(arity) if *arity == 1 => format!(
            "\"{vname}\" => ::std::result::Result::Ok({type_name}::{vname}(\
             ::serde::Deserialize::deserialize(payload)?)),"
        ),
        VariantShape::Tuple(arity) => {
            let items = (0..*arity)
                .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "\"{vname}\" => match payload {{\n\
                     ::serde::Value::Array(items) if items.len() == {arity} => \
                         ::std::result::Result::Ok({type_name}::{vname}({items})),\n\
                     other => ::std::result::Result::Err(::serde::DeError::expected(\
                         \"array of length {arity} for `{type_name}::{vname}`\", other)),\n\
                 }},"
            )
        }
        VariantShape::Struct(fields) => {
            let inits = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::field(fields, \"{type_name}::{vname}\", \"{f}\")?,")
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "\"{vname}\" => {{\n\
                     let fields = ::serde::expect_object(payload, \"{type_name}::{vname}\")?;\n\
                     ::std::result::Result::Ok({type_name}::{vname} {{ {inits} }})\n\
                 }},"
            )
        }
    }
}

fn variant_arm(type_name: &str, variant: &Variant) -> String {
    let vname = &variant.name;
    match &variant.shape {
        VariantShape::Unit => format!(
            "{type_name}::{vname} => \
             ::serde::Value::String(::std::string::String::from(\"{vname}\")),"
        ),
        VariantShape::Tuple(arity) => {
            let binders: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
            let bind = binders.join(", ");
            let payload = if *arity == 1 {
                "::serde::Serialize::serialize(f0)".to_string()
            } else {
                let items = binders
                    .iter()
                    .map(|b| format!("::serde::Serialize::serialize({b})"))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!("::serde::Value::Array(::std::vec![{items}])")
            };
            format!(
                "{type_name}::{vname}({bind}) => ::serde::Value::Object(::std::vec![\
                 (::std::string::String::from(\"{vname}\"), {payload})]),"
            )
        }
        VariantShape::Struct(fields) => {
            let bind = fields.join(", ");
            let pairs = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::serialize({f}))"
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "{type_name}::{vname} {{ {bind} }} => ::serde::Value::Object(::std::vec![\
                 (::std::string::String::from(\"{vname}\"), \
                  ::serde::Value::Object(::std::vec![{pairs}]))]),"
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Minimal derive-input parser (no syn): enough for non-generic structs/enums.
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive does not support generic type `{name}`");
    }
    let shape = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(split_top_level(g.stream()).len())
            }
            _ => Shape::UnitStruct,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            _ => panic!("enum `{name}` has no body"),
        },
        other => panic!("cannot derive for `{other} {name}` (only struct/enum supported)"),
    };
    Item { name, shape }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attributes(&chunk, &mut i);
            skip_visibility(&chunk, &mut i);
            expect_ident(&chunk, &mut i)
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attributes(&chunk, &mut i);
            let name = expect_ident(&chunk, &mut i);
            let shape = match chunk.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantShape::Tuple(split_top_level(g.stream()).len())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantShape::Struct(parse_named_fields(g.stream()))
                }
                _ => VariantShape::Unit,
            };
            Variant { name, shape }
        })
        .collect()
}

/// Splits a token stream on commas that are neither inside a group nor inside `<...>`.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for token in stream {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if !current.is_empty() {
                        chunks.push(std::mem::take(&mut current));
                    }
                    continue;
                }
                _ => {}
            }
        }
        current.push(token);
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1; // '#'
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
        {
            *i += 1; // [...]
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(
            tokens.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1; // pub(crate) / pub(super)
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}
