//! Vendored, dependency-free replacement for the `serde` crate.
//!
//! The build environment has no network access to a crates registry, so the workspace vendors
//! the serde surface it actually uses: `#[derive(Serialize, Deserialize)]` on plain structs
//! and enums, plus `serde_json::to_string_pretty` over the result. Instead of real serde's
//! visitor-based data model, [`Serialize`] maps a value directly onto the JSON-like [`Value`]
//! tree, which `serde_json` then renders.
#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like object model: the target of [`Serialize`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating-point number (non-finite values render as `null`).
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// Maps a value onto the [`Value`] object model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn serialize(&self) -> Value;
}

/// Marker trait emitted by `#[derive(Deserialize)]`; no deserialization is implemented.
pub trait Deserialize {}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

macro_rules! impl_serialize_int {
    ($($signed:ty),* ; $($unsigned:ty),*) => {
        $(impl Serialize for $signed {
            fn serialize(&self) -> Value {
                Value::Int(*self as i64)
            }
        })*
        $(impl Serialize for $unsigned {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        })*
    };
}

impl_serialize_int!(i8, i16, i32, i64, isize ; u8, u16, u32, u64, usize);

impl Serialize for u128 {
    fn serialize(&self) -> Value {
        match u64::try_from(*self) {
            Ok(v) => Value::UInt(v),
            Err(_) => Value::Float(*self as f64),
        }
    }
}

impl Serialize for i128 {
    fn serialize(&self) -> Value {
        match i64::try_from(*self) {
            Ok(v) => Value::Int(v),
            Err(_) => Value::Float(*self as f64),
        }
    }
}

impl Serialize for std::time::Duration {
    fn serialize(&self) -> Value {
        // Matches real serde's {secs, nanos} encoding.
        Value::Object(vec![
            ("secs".to_string(), Value::UInt(self.as_secs())),
            (
                "nanos".to_string(),
                Value::UInt(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        self.as_slice().serialize()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        self.as_slice().serialize()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

macro_rules! impl_serialize_tuple {
    ($($name:ident : $index:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$index.serialize()),+])
            }
        }
    };
}

impl_serialize_tuple!(A: 0);
impl_serialize_tuple!(A: 0, B: 1);
impl_serialize_tuple!(A: 0, B: 1, C: 2);
impl_serialize_tuple!(A: 0, B: 1, C: 2, D: 3);

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.serialize()))
                .collect(),
        )
    }
}

impl<K: ToString, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn serialize(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.serialize()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}
