//! Vendored, dependency-free replacement for the `serde` crate.
//!
//! The build environment has no network access to a crates registry, so the workspace vendors
//! the serde surface it actually uses: `#[derive(Serialize, Deserialize)]` on plain structs
//! and enums, plus `serde_json::to_string_pretty` / `serde_json::from_str` over the result.
//! Instead of real serde's visitor-based data model, [`Serialize`] maps a value directly onto
//! the JSON-like [`Value`] tree (which `serde_json` renders) and [`Deserialize`] reads a value
//! back out of a [`Value`] tree (which `serde_json` parses).
//!
//! Round-trip caveats, shared with real `serde_json`: non-finite floats serialize as `null`
//! and deserialize back as `NaN`, and `Option<f64>::Some(NAN)` therefore comes back as
//! `None`. Finite floats round-trip bit-identically (the serializer emits Rust's
//! shortest-round-trip decimal form).
#![forbid(unsafe_code)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like object model: the target of [`Serialize`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating-point number (non-finite values render as `null`).
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload widened to `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric payload as a `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            Value::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// A short, human-readable name of the value's kind (for error messages).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Maps a value onto the [`Value`] object model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn serialize(&self) -> Value;
}

/// Deserialization error: what was expected, what was found, and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// A free-form deserialization error.
    pub fn custom(message: impl Into<String>) -> Self {
        DeError(message.into())
    }

    /// "expected X, found Y" with the found value's kind.
    pub fn expected(what: &str, found: &Value) -> Self {
        DeError(format!("expected {what}, found {}", found.kind()))
    }

    /// A required field was absent from the serialized object.
    pub fn missing_field(type_name: &str, field: &str) -> Self {
        DeError(format!("missing field `{field}` of `{type_name}`"))
    }

    /// Wraps the error with the struct field it occurred in.
    pub fn in_field(self, type_name: &str, field: &str) -> Self {
        DeError(format!("in `{type_name}.{field}`: {}", self.0))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Reads a value back out of the [`Value`] object model — the inverse of [`Serialize`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`] tree.
    fn deserialize(value: &Value) -> Result<Self, DeError>;

    /// The value to use when a struct field is absent from the serialized object, or `None`
    /// if the field is required (real serde's missing-field semantics: only `Option` fields
    /// tolerate omission). Note this is distinct from deserializing an explicit `null` —
    /// e.g. `f64` accepts `null` as NaN (the serializer's encoding of non-finite floats) but
    /// is still required to be present.
    fn absent() -> Option<Self> {
        None
    }
}

/// Reads one named-struct field out of a serialized object. Absent keys resolve through
/// [`Deserialize::absent`], so `Option` fields tolerate missing entries while everything
/// else reports the missing field. Used by the `#[derive(Deserialize)]` expansion.
pub fn field<T: Deserialize>(
    entries: &[(String, Value)],
    type_name: &str,
    key: &str,
) -> Result<T, DeError> {
    match entries.iter().find(|(k, _)| k == key) {
        Some((_, value)) => T::deserialize(value).map_err(|e| e.in_field(type_name, key)),
        None => T::absent().ok_or_else(|| DeError::missing_field(type_name, key)),
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

macro_rules! impl_serialize_int {
    ($($signed:ty),* ; $($unsigned:ty),*) => {
        $(impl Serialize for $signed {
            fn serialize(&self) -> Value {
                Value::Int(*self as i64)
            }
        })*
        $(impl Serialize for $unsigned {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        })*
    };
}

impl_serialize_int!(i8, i16, i32, i64, isize ; u8, u16, u32, u64, usize);

impl Serialize for u128 {
    fn serialize(&self) -> Value {
        match u64::try_from(*self) {
            Ok(v) => Value::UInt(v),
            Err(_) => Value::Float(*self as f64),
        }
    }
}

impl Serialize for i128 {
    fn serialize(&self) -> Value {
        match i64::try_from(*self) {
            Ok(v) => Value::Int(v),
            Err(_) => Value::Float(*self as f64),
        }
    }
}

impl Serialize for std::time::Duration {
    fn serialize(&self) -> Value {
        // Matches real serde's {secs, nanos} encoding.
        Value::Object(vec![
            ("secs".to_string(), Value::UInt(self.as_secs())),
            (
                "nanos".to_string(),
                Value::UInt(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        self.as_slice().serialize()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        self.as_slice().serialize()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

macro_rules! impl_serialize_tuple {
    ($($name:ident : $index:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$index.serialize()),+])
            }
        }
    };
}

impl_serialize_tuple!(A: 0);
impl_serialize_tuple!(A: 0, B: 1);
impl_serialize_tuple!(A: 0, B: 1, C: 2);
impl_serialize_tuple!(A: 0, B: 1, C: 2, D: 3);

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.serialize()))
                .collect(),
        )
    }
}

impl<K: ToString, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn serialize(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.serialize()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls — the inverses of the Serialize impls above.
// ---------------------------------------------------------------------------

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-character string", other)),
        }
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            // Serialization renders non-finite floats as `null`; map them back to NaN so
            // plain float fields (e.g. an undefined holdout RMSE) survive a round trip.
            Value::Null => Ok(f64::NAN),
            other => other
                .as_f64()
                .ok_or_else(|| DeError::expected("number", other)),
        }
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        f64::deserialize(value).map(|x| x as f32)
    }
}

macro_rules! impl_deserialize_int {
    ($($int:ty),*) => {
        $(impl Deserialize for $int {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                let out = match value {
                    Value::Int(i) => <$int>::try_from(*i).ok(),
                    Value::UInt(u) => <$int>::try_from(*u).ok(),
                    _ => None,
                };
                out.ok_or_else(|| {
                    DeError::expected(concat!("integer fitting ", stringify!($int)), value)
                })
            }
        })*
    };
}

impl_deserialize_int!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize);

impl Deserialize for std::time::Duration {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        let entries = expect_object(value, "Duration")?;
        let secs: u64 = field(entries, "Duration", "secs")?;
        let nanos: u32 = field(entries, "Duration", "nanos")?;
        // `Duration::new` panics when the nanos carry overflows the seconds; normalize with
        // checked arithmetic so a crafted document yields an error instead.
        let secs = secs
            .checked_add(u64::from(nanos / 1_000_000_000))
            .ok_or_else(|| DeError::custom("Duration seconds overflow"))?;
        Ok(std::time::Duration::new(secs, nanos % 1_000_000_000))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }

    fn absent() -> Option<Self> {
        Some(None)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::deserialize(value)?;
        let found = items.len();
        items
            .try_into()
            .map_err(|_| DeError::custom(format!("expected array of length {N}, found {found}")))
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        T::deserialize(value).map(Box::new)
    }
}

macro_rules! impl_deserialize_tuple {
    ($len:expr ; $($name:ident : $index:tt),+) => {
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($name::deserialize(&items[$index])?,)+))
                    }
                    other => Err(DeError::expected(
                        concat!("array of length ", stringify!($len)),
                        other,
                    )),
                }
            }
        }
    };
}

impl_deserialize_tuple!(1 ; A: 0);
impl_deserialize_tuple!(2 ; A: 0, B: 1);
impl_deserialize_tuple!(3 ; A: 0, B: 1, C: 2);
impl_deserialize_tuple!(4 ; A: 0, B: 1, C: 2, D: 3);

impl<K, V> Deserialize for std::collections::BTreeMap<K, V>
where
    K: std::str::FromStr + Ord,
    V: Deserialize,
{
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        deserialize_map_entries(value)?.collect()
    }
}

impl<K, V> Deserialize for std::collections::HashMap<K, V>
where
    K: std::str::FromStr + std::hash::Hash + Eq,
    V: Deserialize,
{
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        deserialize_map_entries(value)?.collect()
    }
}

/// Shared walk for the map impls: parses each key with `FromStr` and each value with
/// `Deserialize`.
#[allow(clippy::type_complexity)]
fn deserialize_map_entries<'a, K, V>(
    value: &'a Value,
) -> Result<impl Iterator<Item = Result<(K, V), DeError>> + 'a, DeError>
where
    K: std::str::FromStr,
    V: Deserialize,
{
    match value {
        Value::Object(entries) => Ok(entries.iter().map(|(k, v)| {
            let key = k
                .parse::<K>()
                .map_err(|_| DeError::custom(format!("unparseable map key `{k}`")))?;
            Ok((key, V::deserialize(v)?))
        })),
        other => Err(DeError::expected("object", other)),
    }
}

/// Helper for derived impls and manual object walks: the entry list of an object value.
pub fn expect_object<'a>(
    value: &'a Value,
    type_name: &str,
) -> Result<&'a [(String, Value)], DeError> {
    match value {
        Value::Object(entries) => Ok(entries),
        other => Err(DeError::expected(
            &format!("object for `{type_name}`"),
            other,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_fields_error_except_for_options() {
        let entries = vec![
            ("present".to_string(), Value::Float(1.5)),
            ("null_float".to_string(), Value::Null),
        ];
        let x: f64 = field(&entries, "T", "present").unwrap();
        assert_eq!(x, 1.5);
        // An explicit null is the serializer's encoding of a non-finite float: accepted.
        let nan: f64 = field(&entries, "T", "null_float").unwrap();
        assert!(nan.is_nan());
        // A *missing* float field is a malformed document, not NaN.
        assert!(field::<f64>(&entries, "T", "missing").is_err());
        assert!(field::<usize>(&entries, "T", "missing").is_err());
        // Option fields tolerate omission.
        let opt: Option<f64> = field(&entries, "T", "missing").unwrap();
        assert!(opt.is_none());
    }

    #[test]
    fn duration_round_trips_and_rejects_overflow() {
        let duration = std::time::Duration::new(7, 123_456_789);
        let restored = std::time::Duration::deserialize(&duration.serialize()).unwrap();
        assert_eq!(restored, duration);

        // Out-of-range nanos normalize with carry...
        let value = Value::Object(vec![
            ("secs".to_string(), Value::UInt(1)),
            ("nanos".to_string(), Value::UInt(2_500_000_000)),
        ]);
        assert_eq!(
            std::time::Duration::deserialize(&value).unwrap(),
            std::time::Duration::new(3, 500_000_000)
        );
        // ...but a carry that overflows the seconds errors instead of panicking.
        let value = Value::Object(vec![
            ("secs".to_string(), Value::UInt(u64::MAX)),
            ("nanos".to_string(), Value::UInt(1_999_999_999)),
        ]);
        assert!(std::time::Duration::deserialize(&value).is_err());
    }

    #[test]
    fn integers_reject_lossy_values() {
        assert!(u32::deserialize(&Value::Int(-1)).is_err());
        assert!(u8::deserialize(&Value::UInt(300)).is_err());
        assert!(i64::deserialize(&Value::Float(1.5)).is_err());
        assert_eq!(u64::deserialize(&Value::Int(7)).unwrap(), 7);
    }
}
