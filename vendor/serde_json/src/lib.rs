//! Vendored, dependency-free replacement for the `serde_json` crate.
//!
//! Renders the vendored [`serde::Value`] object model as JSON text. Only the serialization
//! entry points the workspace uses are provided ([`to_string`], [`to_string_pretty`]).
#![forbid(unsafe_code)]

use std::fmt;

use serde::{Serialize, Value};

/// Serialization error. The vendored object model cannot actually fail, but the public
/// signatures mirror real `serde_json` so call sites stay source-compatible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes `value` as a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Match serde_json: integral floats keep a trailing ".0".
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&format!("{x}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_containers() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&vec![1u32, 2]).unwrap(), "[1,2]");
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
    }

    #[test]
    fn pretty_printing_indents_nested_objects() {
        let value = Value::Object(vec![
            ("k".to_string(), Value::Array(vec![Value::Int(1)])),
            ("s".to_string(), Value::String("x".to_string())),
        ]);
        let pretty = to_string_pretty(&value).unwrap();
        assert_eq!(pretty, "{\n  \"k\": [\n    1\n  ],\n  \"s\": \"x\"\n}");
    }
}
