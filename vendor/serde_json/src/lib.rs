//! Vendored, dependency-free replacement for the `serde_json` crate.
//!
//! Renders the vendored [`serde::Value`] object model as JSON text and parses JSON text back
//! into it. Only the entry points the workspace uses are provided ([`to_string`],
//! [`to_string_pretty`], [`from_str`], [`parse_value`]).
#![forbid(unsafe_code)]

use std::fmt;

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization / parse error. The signatures mirror real `serde_json` so call sites stay
/// source-compatible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn at(message: impl Into<String>, offset: usize) -> Self {
        Error(format!("{} at byte {offset}", message.into()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes `value` as a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Parses a JSON document into a `T`.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse_value(input)?;
    Ok(T::deserialize(&value)?)
}

/// Parses a JSON document into the generic [`Value`] object model (real serde_json's
/// `from_str::<Value>`), e.g. to inspect an envelope before committing to a typed decode.
pub fn parse_value(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::at("trailing characters", parser.pos));
    }
    Ok(value)
}

/// Nesting depth cap: parsing is recursive, and untrusted documents (the HTTP server feeds
/// request bodies straight in here) must not be able to overflow the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::at(
                format!("expected `{}`", char::from(expected)),
                self.pos,
            ))
        }
    }

    fn expect_keyword(&mut self, keyword: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(())
        } else {
            Err(Error::at(format!("expected `{keyword}`"), self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(Error::at("document nested too deeply", self.pos));
        }
        let value = match self.peek() {
            Some(b'n') => self.expect_keyword("null").map(|()| Value::Null),
            Some(b't') => self.expect_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.expect_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::at("expected a JSON value", self.pos)),
        }?;
        self.depth -= 1;
        Ok(value)
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::at("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect_byte(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect_byte(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::at("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::at("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.parse_hex4()?;
                            // Decode UTF-16 surrogate pairs (😀 and friends).
                            let c = if (0xd800..0xdc00).contains(&unit) {
                                self.expect_keyword("\\u")
                                    .map_err(|_| Error::at("unpaired surrogate", self.pos))?;
                                let low = self.parse_hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err(Error::at("invalid low surrogate", self.pos));
                                }
                                let code = 0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(unit)
                            };
                            out.push(
                                c.ok_or_else(|| Error::at("invalid unicode escape", self.pos))?,
                            );
                            continue;
                        }
                        _ => return Err(Error::at("invalid escape sequence", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so boundaries are
                    // valid; find the next char boundary from here).
                    let rest = &self.bytes[self.pos..];
                    let len = match rest[0] {
                        b if b < 0x80 => 1,
                        b if b >= 0xf0 => 4,
                        b if b >= 0xe0 => 3,
                        _ => 2,
                    };
                    let chunk = std::str::from_utf8(&rest[..len.min(rest.len())])
                        .map_err(|_| Error::at("invalid UTF-8 in string", self.pos))?;
                    out.push_str(chunk);
                    self.pos += chunk.len();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::at("truncated unicode escape", self.pos));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::at("invalid unicode escape", self.pos))?;
        let unit = u32::from_str_radix(hex, 16)
            .map_err(|_| Error::at("invalid unicode escape", self.pos))?;
        self.pos = end;
        Ok(unit)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::at("invalid number", start))?;
        if !is_float {
            // Keep integers exact when they fit; widen to f64 only on overflow, matching the
            // serializer's Int/UInt/Float split.
            if text.starts_with('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::at(format!("invalid number `{text}`"), start))
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Match serde_json: integral floats keep a trailing ".0".
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&format!("{x}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_containers() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&vec![1u32, 2]).unwrap(), "[1,2]");
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
    }

    #[test]
    fn pretty_printing_indents_nested_objects() {
        let value = Value::Object(vec![
            ("k".to_string(), Value::Array(vec![Value::Int(1)])),
            ("s".to_string(), Value::String("x".to_string())),
        ]);
        let pretty = to_string_pretty(&value).unwrap();
        assert_eq!(pretty, "{\n  \"k\": [\n    1\n  ],\n  \"s\": \"x\"\n}");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_value("null").unwrap(), Value::Null);
        assert_eq!(parse_value("true").unwrap(), Value::Bool(true));
        assert_eq!(parse_value(" false ").unwrap(), Value::Bool(false));
        assert_eq!(parse_value("42").unwrap(), Value::UInt(42));
        assert_eq!(parse_value("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse_value("2.5e-3").unwrap(), Value::Float(0.0025));
        assert_eq!(parse_value("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_containers_and_preserves_key_order() {
        let value = parse_value("{\"b\": [1, -2, 3.5], \"a\": {}}").unwrap();
        assert_eq!(
            value,
            Value::Object(vec![
                (
                    "b".to_string(),
                    Value::Array(vec![Value::UInt(1), Value::Int(-2), Value::Float(3.5)])
                ),
                ("a".to_string(), Value::Object(vec![])),
            ])
        );
    }

    #[test]
    fn parses_string_escapes_and_surrogate_pairs() {
        assert_eq!(
            parse_value(r#""a\n\t\"\\\u0041\ud83d\ude00b""#).unwrap(),
            Value::String("a\n\t\"\\A😀b".to_string())
        );
        assert_eq!(
            parse_value("\"caffè\"").unwrap(),
            Value::String("caffè".to_string())
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "tru",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "1 2",
            "\"unterminated",
            "{\"a\":1,}x",
            "nul",
            "[1]]",
            "\"\\q\"",
            "\"\\ud800\"",
        ] {
            assert!(parse_value(bad).is_err(), "accepted malformed `{bad}`");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(4096) + &"]".repeat(4096);
        assert!(parse_value(&deep).is_err());
    }

    #[test]
    fn floats_round_trip_bit_identically() {
        for x in [
            0.1,
            -1.5e-300,
            3.0,
            f64::MIN_POSITIVE,
            5e-324,
            f64::MAX,
            -0.0,
            123_456_789.123_456_78,
        ] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {text} -> {back}");
        }
        // Non-finite floats render as null and come back as NaN.
        let nan: f64 = from_str(&to_string(&f64::INFINITY).unwrap()).unwrap();
        assert!(nan.is_nan());
    }

    #[test]
    fn typed_from_str_decodes_containers() {
        let v: Vec<Option<f64>> = from_str("[1.5, null, -2.0]").unwrap();
        assert_eq!(v, vec![Some(1.5), None, Some(-2.0)]);
        let pair: (f64, u32) = from_str("[0.5, 9]").unwrap();
        assert_eq!(pair, (0.5, 9));
        let err = from_str::<Vec<u32>>("[1, \"x\"]");
        assert!(err.is_err());
    }
}
