//! Vendored, dependency-free replacement for the `rand` crate (0.9 API surface).
//!
//! The build environment has no network access to a crates registry, so the workspace vendors
//! the small rand surface it actually uses: [`SeedableRng::seed_from_u64`],
//! [`Rng::random`], [`Rng::random_range`] and the deterministic [`rngs::StdRng`]
//! (xoshiro256++, seeded via SplitMix64). Everything is reproducible given a seed; there is
//! deliberately no entropy-based constructor.
#![forbid(unsafe_code)]

/// A source of randomness, plus the convenience methods the workspace uses.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a value sampled from the standard distribution of `T` (`f64`/`f32` uniform in
    /// `[0, 1)`, integers uniform over their full range, fair `bool`).
    fn random<T: distr::StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns a value uniformly sampled from `range`. Panics on an empty range.
    fn random_range<T, R: distr::SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.random();
        u < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random number generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let state = [next(), next(), next(), next()];
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

/// Standard-distribution sampling and uniform range sampling.
pub mod distr {
    use super::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Types samplable from their "standard" distribution.
    pub trait StandardSample {
        /// Samples one value from the standard distribution.
        fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
    }

    impl StandardSample for f64 {
        fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
            // 53 uniform bits in [0, 1).
            (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    impl StandardSample for f32 {
        fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
        }
    }

    impl StandardSample for bool {
        fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {
            $(impl StandardSample for $t {
                fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                    rng.next_u64() as $t
                }
            })*
        };
    }

    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Ranges a value of type `T` can be uniformly sampled from.
    pub trait SampleRange<T> {
        /// Samples one value uniformly from the range. Panics if the range is empty.
        fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! impl_float_range {
        ($($t:ty),*) => {
            $(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let u: f64 = f64::sample_standard(rng);
                        self.start + (u as $t) * (self.end - self.start)
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "cannot sample empty range");
                        let u: f64 = f64::sample_standard(rng);
                        lo + (u as $t) * (hi - lo)
                    }
                }
            )*
        };
    }

    impl_float_range!(f64, f32);

    macro_rules! impl_int_range {
        ($($t:ty),*) => {
            $(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let span = (self.end as i128 - self.start as i128) as u128;
                        let offset = (rng.next_u64() as u128) % span;
                        (self.start as i128 + offset as i128) as $t
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "cannot sample empty range");
                        let span = (hi as i128 - lo as i128 + 1) as u128;
                        let offset = (rng.next_u64() as u128) % span;
                        (lo as i128 + offset as i128) as $t
                    }
                }
            )*
        };
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn random_unit_floats_are_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let i = rng.random_range(0..=9usize);
            assert!(i <= 9);
            let j = rng.random_range(5..6u64);
            assert_eq!(j, 5);
        }
    }

    #[test]
    fn random_range_covers_all_integer_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn works_through_unsized_references() {
        fn sample(rng: &mut (impl Rng + ?Sized)) -> f64 {
            rng.random_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let dynamic: &mut StdRng = &mut rng;
        let x = sample(dynamic);
        assert!((0.0..1.0).contains(&x));
    }
}
