//! # SuRF — SUrrogate Region Finder
//!
//! A Rust reproduction of *"SuRF: Identification of Interesting Data Regions with Surrogate
//! Models"* (Savva, Anagnostopoulos, Triantafillou — IEEE ICDE 2020).
//!
//! SuRF answers the query: *given a threshold `y_R` on a statistic (density, average, ratio,
//! ...), find all hyper-rectangular regions of a multidimensional dataset whose statistic
//! exceeds (or is below) `y_R`* — without scanning the data at query time. It does so by
//!
//! 1. training a **surrogate model** (gradient-boosted regression trees) on past region
//!    evaluations, and
//! 2. running **Glowworm Swarm Optimization** (a multimodal evolutionary optimizer) over the
//!    `2d`-dimensional region space to maximize a size-regularized objective.
//!
//! This umbrella crate re-exports the four library crates of the workspace:
//!
//! * [`data`] — datasets, regions, statistics, synthetic/real-world-like generators.
//! * [`ml`] — regression trees, gradient boosting, KDE, cross-validation, grid search.
//! * [`optim`] — Glowworm Swarm Optimization, PSO, the Naive baseline and PRIM.
//! * [`core`] — objective functions, surrogate abstraction and the SuRF pipeline.
//! * [`serve`] — surrogate persistence (versioned JSON artifacts) and a concurrent HTTP
//!   serving subsystem (model registry, prediction cache, worker-pool JSON API).
//!
//! ## Quick start
//!
//! ```
//! use surf::prelude::*;
//!
//! // A small synthetic dataset with one dense ground-truth region.
//! let spec = SyntheticSpec::density(2, 1).with_points(4_000).with_seed(7);
//! let synthetic = SyntheticDataset::generate(&spec);
//!
//! // Train a surrogate on past region evaluations and mine regions above the threshold.
//! let config = SurfConfig::builder()
//!     .statistic(Statistic::Count)
//!     .threshold(Threshold::above(150.0))
//!     .training_queries(800)
//!     .gbrt(GbrtParams::quick())
//!     .gso(GsoParams::quick())
//!     .kde_sample(300)
//!     .seed(7)
//!     .build();
//! let surf = Surf::fit(&synthetic.dataset, &config).expect("training succeeds");
//! let outcome = surf.mine();
//! assert!(!outcome.regions.is_empty());
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use surf_core as core;
pub use surf_data as data;
pub use surf_ml as ml;
pub use surf_optim as optim;
pub use surf_serve as serve;

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use surf_core::{
        comparison::{ComparisonConfig, Method, MethodComparison, MethodRun},
        evaluation::{match_regions, validity_fraction, validity_fraction_threaded, RegionMatch},
        finder::{MinedRegion, MiningOutcome, Surf, SurfState},
        objective::{Direction, LogObjective, Objective, RatioObjective, Threshold},
        pipeline::SurfConfig,
        surrogate::{GbrtSurrogate, Surrogate, SurrogateTrainer, TrueFunctionSurrogate},
    };
    pub use surf_data::{
        activity::{Activity, ActivityDataset, ActivitySpec},
        crimes::{CrimesDataset, CrimesSpec},
        dataset::Dataset,
        index::{IndexKind, RegionIndex},
        iou::iou,
        region::Region,
        statistic::Statistic,
        synthetic::{SyntheticDataset, SyntheticSpec},
        workload::{Workload, WorkloadSpec},
    };
    pub use surf_ml::{
        compiled::CompiledEnsemble,
        gbrt::{Gbrt, GbrtParams},
        kde::KernelDensity,
        matrix::FeatureMatrix,
        metrics::rmse,
    };
    pub use surf_optim::{
        gso::{GlowwormSwarm, GsoParams, GsoResult},
        naive::{NaiveParams, NaiveSearch},
        prim::{Prim, PrimParams},
    };
    pub use surf_serve::{
        serve, CacheConfig, ModelArtifact, ModelRegistry, ServeError, ServerConfig,
    };
}
