//! Cross-crate property-based tests (proptest) on the invariants the SuRF pipeline relies on.

use proptest::prelude::*;
use surf::core::objective::Direction;
use surf::prelude::*;

/// Strategy: a valid region in [0, 1]^d with d in 1..=4.
fn region_strategy() -> impl Strategy<Value = Region> {
    (1usize..=4)
        .prop_flat_map(|d| {
            (
                prop::collection::vec(0.0f64..1.0, d),
                prop::collection::vec(0.01f64..0.4, d),
            )
        })
        .prop_map(|(center, half)| Region::new(center, half).expect("valid region"))
}

/// Strategy: two regions with the same dimensionality.
fn region_pair_strategy() -> impl Strategy<Value = (Region, Region)> {
    (1usize..=4).prop_flat_map(|d| {
        let one = (
            prop::collection::vec(0.0f64..1.0, d),
            prop::collection::vec(0.01f64..0.4, d),
        )
            .prop_map(|(c, h)| Region::new(c, h).expect("valid region"));
        let other = (
            prop::collection::vec(0.0f64..1.0, d),
            prop::collection::vec(0.01f64..0.4, d),
        )
            .prop_map(|(c, h)| Region::new(c, h).expect("valid region"));
        (one, other)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// IoU is a proper similarity: bounded, symmetric, and 1 exactly on identical regions.
    #[test]
    fn iou_is_bounded_symmetric_and_reflexive((a, b) in region_pair_strategy()) {
        let ab = iou(&a, &b);
        let ba = iou(&b, &a);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((iou(&a, &a) - 1.0).abs() < 1e-12);
    }

    /// Growing a region can only gain points: COUNT is monotone under region containment.
    #[test]
    fn count_is_monotone_under_containment(region in region_strategy(), seed in 0u64..1_000) {
        let d = region.dimensions();
        let spec = SyntheticSpec::density(d, 1).with_points(800).with_seed(seed);
        let synthetic = SyntheticDataset::generate(&spec);
        let grown = region.scaled(1.5).unwrap();
        let small = Statistic::Count
            .evaluate_or(&synthetic.dataset, &region, 0.0)
            .unwrap();
        let large = Statistic::Count
            .evaluate_or(&synthetic.dataset, &grown, 0.0)
            .unwrap();
        prop_assert!(large >= small);
    }

    /// The solution-vector round trip preserves regions exactly.
    #[test]
    fn solution_vector_round_trip(region in region_strategy()) {
        let vector = region.to_solution_vector();
        prop_assert_eq!(vector.len(), 2 * region.dimensions());
        let back = Region::from_solution_vector(&vector, 1e-9).unwrap();
        prop_assert_eq!(back, region);
    }

    /// The log objective is finite exactly when the constraint is satisfied.
    #[test]
    fn log_objective_finite_iff_constraint_satisfied(
        region in region_strategy(),
        statistic in -100.0f64..100.0,
        threshold_value in -50.0f64..50.0,
        above in proptest::bool::ANY,
    ) {
        let threshold = if above {
            Threshold::above(threshold_value)
        } else {
            Threshold::below(threshold_value)
        };
        let objective = Objective::log(2.0);
        let value = objective.evaluate(statistic, &region, &threshold);
        prop_assert_eq!(value.is_finite(), threshold.satisfied(statistic));
    }

    /// The ratio objective's sign tracks the constraint margin.
    #[test]
    fn ratio_objective_sign_tracks_margin(
        region in region_strategy(),
        statistic in -100.0f64..100.0,
        threshold_value in -50.0f64..50.0,
    ) {
        let threshold = Threshold::above(threshold_value);
        let value = Objective::ratio(1.0).evaluate(statistic, &region, &threshold);
        if threshold.margin(statistic) > 0.0 {
            prop_assert!(value > 0.0);
        } else {
            prop_assert!(value <= 0.0);
        }
    }

    /// Threshold direction semantics: above and below are mirror images.
    #[test]
    fn threshold_directions_are_mirrored(value in -100.0f64..100.0, statistic in -100.0f64..100.0) {
        let above = Threshold { value, direction: Direction::Above };
        let below = Threshold { value, direction: Direction::Below };
        prop_assert!((above.margin(statistic) + below.margin(statistic)).abs() < 1e-12);
        if (statistic - value).abs() > 1e-9 {
            prop_assert_ne!(above.satisfied(statistic), below.satisfied(statistic));
        }
    }

    /// GBRT predictions stay within the range of the training targets (each tree predicts
    /// means of residual subsets, so the ensemble cannot extrapolate beyond the data range).
    #[test]
    fn gbrt_predictions_stay_in_target_range(seed in 0u64..500) {
        let mut targets = Vec::new();
        let mut features = Vec::new();
        // A deterministic pseudo-random training set derived from the seed.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        for _ in 0..80 {
            let x = vec![next(), next()];
            targets.push(3.0 * x[0] - x[1]);
            features.push(x);
        }
        let model = Gbrt::fit(&features, &targets, &GbrtParams::quick().with_n_estimators(20)).unwrap();
        let lo = targets.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = targets.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for probe in [[0.0, 0.0], [1.0, 1.0], [0.5, 0.5], [0.0, 1.0]] {
            let prediction = model.predict_one(&probe).unwrap();
            prop_assert!(prediction >= lo - 1e-6 && prediction <= hi + 1e-6,
                "prediction {} outside [{}, {}]", prediction, lo, hi);
        }
    }

    /// Workload-generated regions always respect the requested coverage bounds.
    #[test]
    fn workload_regions_respect_coverage(seed in 0u64..200) {
        let synthetic = SyntheticDataset::generate(
            &SyntheticSpec::density(2, 1).with_points(500).with_seed(seed),
        );
        let spec = WorkloadSpec::default().with_queries(30).with_coverage(0.05, 0.2).with_seed(seed);
        let workload = Workload::generate(&synthetic.dataset, Statistic::Count, &spec).unwrap();
        let domain = synthetic.dataset.domain().unwrap();
        for eval in &workload.evaluations {
            for dim in 0..2 {
                let side = domain.upper_in(dim) - domain.lower_in(dim);
                let coverage = eval.region.half_lengths()[dim] / side;
                prop_assert!((0.049..=0.201).contains(&coverage));
            }
            prop_assert!(eval.value >= 0.0);
        }
    }
}
