//! Integration tests of the four-method comparison harness (the machinery behind the paper's
//! Fig. 3 and Table I).

use std::time::Duration;

use surf::prelude::*;

#[test]
fn all_methods_run_on_a_density_dataset() {
    let synthetic = SyntheticDataset::generate(
        &SyntheticSpec::density(2, 1)
            .with_points(4_000)
            .with_points_per_region(1_200)
            .with_seed(301),
    );
    let config = ComparisonConfig {
        gso: GsoParams::paper_default().with_seed(301),
        ..ComparisonConfig::quick().with_seed(301)
    };
    let harness = MethodComparison::new(config);
    // Use a threshold the quick surrogate settings can comfortably satisfy (the full paper
    // settings in the bench harness use y_R = 1000 with a much larger training workload).
    let threshold = Threshold::above(600.0);
    let runs: Vec<MethodRun> = Method::ALL
        .iter()
        .map(|&m| {
            harness
                .run(m, &synthetic.dataset, Statistic::Count, threshold)
                .unwrap()
        })
        .collect();
    assert_eq!(runs.len(), 4);
    for run in &runs {
        assert!(!run.timed_out, "{} timed out", run.method.name());
    }
    // SuRF and f+GlowWorm find the dense region with comparable accuracy.
    let iou_of = |method: Method| {
        runs.iter()
            .find(|r| r.method == method)
            .unwrap()
            .mean_iou(&synthetic.ground_truth)
    };
    let surf_iou = iou_of(Method::Surf);
    let f_iou = iou_of(Method::FGlowworm);
    assert!(surf_iou > 0.1, "SuRF IoU {surf_iou}");
    assert!(f_iou > 0.1, "f+GlowWorm IoU {f_iou}");
    // PRIM has no usable response on the density statistic, so it should not be the best
    // method here (the paper's observation).
    let prim_iou = iou_of(Method::Prim);
    assert!(
        prim_iou <= surf_iou.max(f_iou) + 0.05,
        "PRIM unexpectedly dominates on density: {prim_iou}"
    );
}

#[test]
fn surf_mining_is_faster_than_f_glowworm_on_larger_data() {
    // The headline performance claim: mining with the surrogate does not touch the data, so
    // its cost is independent of N, while f+GlowWorm pays a full scan per objective
    // evaluation. Pinned to the unindexed scan path — the regime the paper's Table I
    // measures; the spatial index narrows exactly this gap (see
    // indexed_f_glowworm_is_much_faster_than_the_scan below).
    let synthetic = SyntheticDataset::generate(
        &SyntheticSpec::density(2, 1)
            .with_points(150_000)
            .with_points_per_region(20_000)
            .with_seed(303),
    );
    let config = ComparisonConfig {
        index_kind: surf::data::index::IndexKind::Scan,
        ..ComparisonConfig::quick().with_seed(303)
    };
    let harness = MethodComparison::new(config);
    let surf_run = harness
        .run(
            Method::Surf,
            &synthetic.dataset,
            Statistic::Count,
            Threshold::above(5_000.0),
        )
        .unwrap();
    let f_run = harness
        .run(
            Method::FGlowworm,
            &synthetic.dataset,
            Statistic::Count,
            Threshold::above(5_000.0),
        )
        .unwrap();
    assert!(
        surf_run.mining_time < f_run.mining_time,
        "SuRF mining ({:?}) should be faster than f+GlowWorm ({:?}) at N = 150k",
        surf_run.mining_time,
        f_run.mining_time
    );
}

#[test]
fn indexed_f_glowworm_is_much_faster_than_the_scan() {
    // The new regime: with the grid index serving the true-function evaluations, the
    // data-touching baseline no longer pays a full O(N·d) scan per candidate.
    let synthetic = SyntheticDataset::generate(
        &SyntheticSpec::density(2, 1)
            .with_points(150_000)
            .with_points_per_region(20_000)
            .with_seed(303),
    );
    let run_with = |kind: surf::data::index::IndexKind| {
        let config = ComparisonConfig {
            index_kind: kind,
            ..ComparisonConfig::quick().with_seed(303)
        };
        MethodComparison::new(config)
            .run(
                Method::FGlowworm,
                &synthetic.dataset,
                Statistic::Count,
                Threshold::above(5_000.0),
            )
            .unwrap()
    };
    // Build the grid index outside the timed mining run (the scan path has no index).
    synthetic
        .dataset
        .region_index(surf::data::index::IndexKind::Grid);
    let indexed = run_with(surf::data::index::IndexKind::Grid);
    let scanned = run_with(surf::data::index::IndexKind::Scan);
    assert!(
        indexed.mining_time < scanned.mining_time,
        "indexed f+GlowWorm ({:?}) should beat the scan ({:?}) at N = 150k",
        indexed.mining_time,
        scanned.mining_time
    );
}

#[test]
fn naive_times_out_gracefully_under_a_tight_budget() {
    let synthetic = SyntheticDataset::generate(
        &SyntheticSpec::density(3, 1)
            .with_points(20_000)
            .with_points_per_region(3_000)
            .with_seed(305),
    );
    // Pinned to the scan path: the timeout/coverage accounting is under test, and it needs
    // the original per-candidate full-scan cost (the index finishes this sweep in time).
    let config = ComparisonConfig {
        index_kind: surf::data::index::IndexKind::Scan,
        ..ComparisonConfig::quick()
            .with_seed(305)
            .with_naive_time_limit(Duration::from_millis(50))
    };
    let harness = MethodComparison::new(config);
    let run = harness
        .run(
            Method::Naive,
            &synthetic.dataset,
            Statistic::Count,
            Threshold::above(1_000.0),
        )
        .unwrap();
    assert!(run.timed_out);
    assert!(run.coverage < 1.0);
    assert!(run.coverage > 0.0);
}

#[test]
fn prim_shines_on_the_aggregate_statistic_with_one_region() {
    // The paper's Fig. 3 (top-left): PRIM is the strongest method for aggregate, k = 1.
    let synthetic = SyntheticDataset::generate(
        &SyntheticSpec::aggregate(2, 1)
            .with_points(5_000)
            .with_seed(307),
    );
    let harness = MethodComparison::new(ComparisonConfig::quick().with_seed(307));
    let run = harness.run_on_synthetic(Method::Prim, &synthetic).unwrap();
    let iou = run.mean_iou(&synthetic.ground_truth);
    assert!(iou > 0.3, "PRIM aggregate IoU {iou}");
}
