//! End-to-end integration tests of the SuRF pipeline across all workspace crates.

use surf::prelude::*;

fn quick_config(statistic: Statistic, threshold: Threshold, seed: u64) -> SurfConfig {
    SurfConfig::builder()
        .statistic(statistic)
        .threshold(threshold)
        .training_queries(1_500)
        .gbrt(GbrtParams::quick())
        .gso(GsoParams::paper_default().with_seed(seed))
        .kde_sample(400)
        .seed(seed)
        .build()
}

#[test]
fn surf_recovers_a_dense_ground_truth_region() {
    let synthetic = SyntheticDataset::generate(
        &SyntheticSpec::density(2, 1)
            .with_points(5_000)
            .with_points_per_region(1_300)
            .with_seed(101),
    );
    let config = quick_config(Statistic::Count, Threshold::above(700.0), 101);
    let surf = Surf::fit(&synthetic.dataset, &config).unwrap();
    let outcome = surf.mine();
    assert!(!outcome.regions.is_empty());
    let matched = match_regions(&outcome.region_list(), &synthetic.ground_truth);
    assert!(matched.mean_iou > 0.15, "IoU too low: {}", matched.mean_iou);
}

#[test]
fn surf_proposals_are_valid_under_the_true_function() {
    let synthetic = SyntheticDataset::generate(
        &SyntheticSpec::density(2, 1)
            .with_points(5_000)
            .with_points_per_region(1_300)
            .with_seed(55),
    );
    let threshold = Threshold::above(500.0);
    let config = quick_config(Statistic::Count, threshold, 55);
    let surf = Surf::fit(&synthetic.dataset, &config).unwrap();
    let outcome = surf.mine();
    assert!(!outcome.regions.is_empty());
    // The surrogate and the true function must agree on the constraint for the large majority
    // of proposals (the paper reports 100 % on the Crimes experiment).
    let validity = validity_fraction(
        &synthetic.dataset,
        Statistic::Count,
        &threshold,
        &outcome.region_list(),
        0.0,
    )
    .unwrap();
    assert!(validity >= 0.5, "validity fraction {validity}");
}

#[test]
fn surf_handles_the_aggregate_statistic() {
    let synthetic = SyntheticDataset::generate(
        &SyntheticSpec::aggregate(2, 1)
            .with_points(5_000)
            .with_seed(77),
    );
    // An average statistic is scale-free, so the size-regularized objective pushes toward the
    // smallest allowed boxes (the paper makes the same observation about the global optimum
    // being an infinitesimal box). Bounding the half side lengths from below — an analyst
    // choice the paper's `c` discussion motivates — keeps the proposals comparable to the
    // ground truth in size.
    let config = SurfConfig::builder()
        .statistic(Statistic::average_of_measure())
        .threshold(Threshold::above(2.0))
        .training_queries(1_500)
        .gbrt(GbrtParams::quick())
        .gso(GsoParams::paper_default().with_seed(77))
        .length_fractions(0.08, 0.4)
        .kde_sample(400)
        .seed(77)
        .build();
    let surf = Surf::fit(&synthetic.dataset, &config).unwrap();
    let outcome = surf.mine();
    assert!(!outcome.regions.is_empty(), "no aggregate regions found");
    let matched = match_regions(&outcome.region_list(), &synthetic.ground_truth);
    assert!(matched.mean_iou > 0.1, "IoU {}", matched.mean_iou);
}

#[test]
fn below_direction_finds_sparse_regions() {
    // Seek regions with FEWER than 5 points: the empty corners of a dataset whose mass is
    // concentrated in the centre.
    let synthetic = SyntheticDataset::generate(
        &SyntheticSpec::density(2, 1)
            .with_points(3_000)
            .with_points_per_region(2_500)
            .with_seed(13),
    );
    let config = SurfConfig::builder()
        .statistic(Statistic::Count)
        .threshold(Threshold::below(5.0))
        .training_queries(1_000)
        .gbrt(GbrtParams::quick())
        .gso(GsoParams::quick().with_seed(13))
        .kde_guide(false)
        .seed(13)
        .build();
    let surf = Surf::fit(&synthetic.dataset, &config).unwrap();
    let outcome = surf.mine();
    // Sparse regions exist (most of the domain is nearly empty), so something must be found.
    assert!(!outcome.regions.is_empty());
    for mined in &outcome.regions {
        assert!(mined.predicted_value < 5.0);
    }
}

#[test]
fn mined_regions_stay_inside_the_data_domain() {
    let crimes =
        CrimesDataset::generate(&CrimesSpec::default().with_incidents(8_000).with_seed(21));
    let q3 = crimes.third_quartile_threshold(200, 0.06, 3);
    let config = quick_config(Statistic::Count, Threshold::above(q3), 21);
    let surf = Surf::fit(&crimes.dataset, &config).unwrap();
    let outcome = surf.mine();
    let domain = surf.domain().scaled(1.6).unwrap();
    for mined in &outcome.regions {
        assert!(
            domain.contains(mined.region.center()),
            "region centre escaped the domain"
        );
    }
}

#[test]
fn training_once_serves_multiple_thresholds() {
    let synthetic = SyntheticDataset::generate(
        &SyntheticSpec::density(2, 3)
            .with_points(6_000)
            .with_points_per_region(1_300)
            .with_seed(31),
    );
    let config = quick_config(Statistic::Count, Threshold::above(400.0), 31);
    let surf = Surf::fit(&synthetic.dataset, &config).unwrap();
    let loose = surf.mine_with(Threshold::above(200.0));
    let tight = surf.mine_with(Threshold::above(1_000.0));
    // Both requests are served without retraining; the loose one admits at least as much of
    // the swarm.
    assert!(loose.swarm_valid_fraction >= tight.swarm_valid_fraction);
}

#[test]
fn ratio_statistic_pipeline_on_activity_data() {
    let activity =
        ActivityDataset::generate(&ActivitySpec::default().with_samples(25_000).with_seed(3));
    let statistic = activity.ratio_statistic(Activity::Standing);
    let config = SurfConfig::builder()
        .statistic(statistic)
        .threshold(Threshold::above(0.2))
        .training_queries(3_000)
        .workload_coverage(0.05, 0.3)
        .gbrt(GbrtParams::quick())
        .gso(GsoParams::paper_default().with_seed(3))
        .length_fractions(0.08, 0.4)
        .kde_sample(400)
        .seed(3)
        .build();
    let surf = Surf::fit(&activity.dataset, &config).unwrap();
    let outcome = surf.mine();
    // Regions of high standing ratio exist around the planted signature; SuRF should find at
    // least one candidate whose true ratio is clearly elevated relative to the ~8 % base rate.
    assert!(!outcome.regions.is_empty(), "no ratio regions proposed");
    let best_true_ratio = outcome
        .regions
        .iter()
        .map(|mined| {
            statistic
                .evaluate_or(&activity.dataset, &mined.region, 0.0)
                .unwrap()
        })
        .fold(0.0_f64, f64::max);
    assert!(
        best_true_ratio > 0.15,
        "no proposed region has an elevated true stand ratio (best {best_true_ratio})"
    );
}
